/**
 * @file
 * The `dmpb --serve` daemon: a benchmark-as-a-service front end over
 * PipelineService.
 *
 * One Server binds a local Unix-domain socket and speaks the NDJSON
 * protocol of serve/protocol.hh. Run requests are admission-controlled
 * through a bounded priority queue: when the queue is full the request
 * is rejected immediately with `"rejected":"overloaded"` instead of
 * growing memory without bound, which is the whole back-pressure
 * contract -- a client that floods the daemon learns so synchronously.
 * Admitted requests are drained by a fixed set of worker tasks running
 * on the repo's existing ThreadPool (base/thread_pool); each worker
 * executes PipelineService::execute and streams the outcome back as
 * one response line on the requesting connection.
 *
 * Shutdown is graceful on both paths: SIGTERM/SIGINT flips the same
 * flag a `{"cmd":"shutdown"}` request does. New run requests are then
 * rejected with `"rejected":"shutting-down"`, already-admitted work
 * drains to completion, and the shutdown requester (if any) receives
 * its response only after the drain, so observing the response means
 * every admitted request has been answered.
 */

#ifndef DMPB_SERVE_SERVER_HH
#define DMPB_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_annotations.hh"
#include "runner/pipeline_service.hh"
#include "serve/protocol.hh"

namespace dmpb {

/** Daemon knobs (the service itself is configured by ServiceConfig). */
struct ServeOptions
{
    /** Filesystem path of the Unix-domain listening socket. A stale
     *  socket file at this path is replaced. Kept short: sockaddr_un
     *  caps it at ~107 bytes. */
    std::string socket_path;
    /** Pipeline worker tasks draining the admission queue. */
    std::size_t workers = 1;
    /** Admission-queue capacity; a run request arriving when this
     *  many are already queued is rejected ("overloaded"). */
    std::size_t max_queue = 64;
};

/** Daemon-level counter snapshot (stats command). */
struct ServeStats
{
    std::uint64_t connections = 0;   ///< accepted connections, total
    std::uint64_t admitted = 0;      ///< run requests queued
    std::uint64_t completed = 0;     ///< run responses sent
    std::uint64_t rejected = 0;      ///< back-pressure rejections
    std::uint64_t errors = 0;        ///< malformed-request responses
    std::uint64_t queue_depth = 0;   ///< runnable requests right now
};

/** The serve daemon. Construct, then serve() until shutdown. */
class Server
{
  public:
    Server(ServiceConfig service_config, ServeOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket and run the accept loop on the calling thread
     * until a shutdown request or SIGTERM/SIGINT arrives, then drain
     * and tear down. Returns 0 on a clean run, 1 when the socket
     * could not be bound. Installs SIGTERM/SIGINT handlers for the
     * duration of the call and restores the previous ones after.
     */
    int serve();

    /** Request a graceful stop (as the signal path does). Safe from
     *  any thread; serve() returns once the drain completes. */
    void requestStop() DMPB_EXCLUDES(queue_mutex_);

    /** Counter snapshot (thread-safe). */
    ServeStats stats() const
        DMPB_EXCLUDES(stats_mutex_, queue_mutex_);

    const ServeOptions &options() const { return options_; }
    const PipelineService &service() const { return service_; }

  private:
    struct Connection;

    /** One admitted run request waiting for a worker. */
    struct Job
    {
        ServeRequest request;
        std::shared_ptr<Connection> conn;
        std::chrono::steady_clock::time_point enqueued;
        std::uint64_t seq = 0;
    };

    /** Heap order: higher priority first, admission order within. */
    struct JobOrder
    {
        bool
        operator()(const Job &a, const Job &b) const
        {
            if (a.request.priority != b.request.priority)
                return a.request.priority < b.request.priority;
            return a.seq > b.seq;
        }
    };

    void readerLoop(std::shared_ptr<Connection> conn);
    void handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line);
    void handleRun(const std::shared_ptr<Connection> &conn,
                   ServeRequest request)
        DMPB_EXCLUDES(queue_mutex_, stats_mutex_);
    void workerLoop() DMPB_EXCLUDES(queue_mutex_, stats_mutex_);
    bool popJob(Job &out) DMPB_EXCLUDES(queue_mutex_);
    void drainAndJoin() DMPB_EXCLUDES(shutdown_mutex_, conns_mutex_);

    std::string statsResponse(std::uint64_t id) const;
    std::string listResponse(std::uint64_t id) const;

    PipelineService service_;
    ServeOptions options_;

    int listen_fd_ = -1;

    /** Set once shutdown begins: no new admissions, queue drains.
     *  Atomic, not guarded: the accept loop polls it locklessly; the
     *  release-store in requestStop() happens under queue_mutex_ so
     *  workers cannot race an admission against their exit check. */
    std::atomic<bool> stopping_{false};

    /** Admission queue: priority desc, admission order within. */
    mutable AnnotatedMutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::priority_queue<Job, std::vector<Job>, JobOrder> queue_
        DMPB_GUARDED_BY(queue_mutex_);
    std::uint64_t next_seq_ DMPB_GUARDED_BY(queue_mutex_) = 0;

    /** Live connections + their reader threads. */
    AnnotatedMutex conns_mutex_;
    std::vector<std::shared_ptr<Connection>> conns_
        DMPB_GUARDED_BY(conns_mutex_);
    std::vector<std::thread> readers_
        DMPB_GUARDED_BY(conns_mutex_);

    /** The shutdown requester, answered post-drain. */
    AnnotatedMutex shutdown_mutex_;
    std::shared_ptr<Connection> shutdown_conn_
        DMPB_GUARDED_BY(shutdown_mutex_);
    std::uint64_t shutdown_id_ DMPB_GUARDED_BY(shutdown_mutex_) = 0;
    bool shutdown_requested_ DMPB_GUARDED_BY(shutdown_mutex_) = false;

    mutable AnnotatedMutex stats_mutex_;
    ServeStats stats_ DMPB_GUARDED_BY(stats_mutex_);
};

} // namespace dmpb

#endif // DMPB_SERVE_SERVER_HH
