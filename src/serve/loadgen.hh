/**
 * @file
 * The `dmpb --loadgen` harness: a closed-loop client for the serve
 * daemon.
 *
 * Opens a set of persistent connections to a running `dmpb --serve`
 * socket and replays a mixed warm/cold request stream against it:
 * warm requests use the cache ("cache":"use", so after the first
 * tune of a scenario cell the daemon answers from its in-memory or
 * on-disk layers), cold requests force a full pipeline
 * ("cache":"bypass"). Each connection runs one request at a time
 * (closed loop); back-pressure rejections are counted and retried
 * with a small backoff so the configured request count is actually
 * served. The report carries throughput and the p50/p95/p99 latency
 * spectrum (base/stats_util percentile, linear interpolation).
 */

#ifndef DMPB_SERVE_LOADGEN_HH
#define DMPB_SERVE_LOADGEN_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "workloads/registry.hh"

namespace dmpb {

/** Load-generator knobs. */
struct LoadGenOptions
{
    /** Socket of the daemon under load. */
    std::string socket_path;
    /** Total run requests to serve (across all connections). */
    std::size_t requests = 1000;
    /** Concurrent closed-loop connections. */
    std::size_t connections = 4;
    /** Workload names cycled across requests; empty = every
     *  registered workload. */
    std::vector<std::string> workloads;
    /** Scale of every request (tiny keeps a 1000-request replay in
     *  CI territory). */
    Scale scale = Scale::Tiny;
    /** Master seed sent with every request (a fixed seed is what
     *  makes the warm fraction actually warm). */
    std::uint64_t seed = 99;
    /** Percentage (0..100) of requests sent with "cache":"bypass". */
    unsigned cold_percent = 10;
    /** Optional per-request pipeline timeout_s; 0 = unlimited. */
    double timeout_s = 0.0;
};

/** What the replay measured. */
struct LoadGenReport
{
    std::size_t requests = 0;    ///< run responses received (ok)
    std::size_t cold = 0;        ///< of which cache-bypass
    std::size_t rejections = 0;  ///< back-pressure responses (retried)
    std::size_t errors = 0;      ///< error responses / transport drops
    double elapsed_s = 0.0;
    double throughput_rps = 0.0;
    double min_ms = 0.0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    bool ok = false;             ///< every requested run was served
};

/**
 * Run the replay. Fails (report.ok == false) when the socket cannot
 * be reached or any request never produced an ok response.
 */
LoadGenReport runLoadGen(const LoadGenOptions &options);

/** Human-readable summary. */
std::string renderLoadGenTable(const LoadGenReport &report);

/** Machine-readable summary (one JSON object + newline). */
std::string renderLoadGenJson(const LoadGenReport &report);

} // namespace dmpb

#endif // DMPB_SERVE_LOADGEN_HH
