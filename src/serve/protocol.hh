/**
 * @file
 * The PipelineService wire protocol of the `dmpb --serve` daemon.
 *
 * Transport: a local SOCK_STREAM Unix-domain socket carrying
 * newline-delimited JSON (NDJSON): one request object per line in,
 * one response object per line out. Responses to immediate commands
 * (stats, ping, list) keep request order within a connection; run
 * responses complete out of order (the `id` a client supplies is
 * echoed back so it can match them up).
 *
 * Requests:
 *
 *   {"cmd":"run","workload":"terasort","scale":"tiny","seed":99,
 *    "timeout_s":5,"cache":"use","priority":0,"id":1}
 *       cmd defaults to "run" when a workload field is present.
 *       scale: tiny|quick|paper (default quick); cache: use|bypass
 *       (default use); priority: higher runs sooner (default 0);
 *       optional preset overrides: input_bytes, vertices, steps,
 *       batch, sparsity.
 *   {"cmd":"colocate","workloads":["grep","kmeans"],
 *    "policy":"static-equal","scale":"quick","seed":99,
 *    "cache":"use","priority":0,"id":6}
 *       co-located multi-tenant scenario (core/colocation): >= 2
 *       workload names sharing one simulated LLC under the named
 *       way-partitioning policy (default "none"). Queued and
 *       prioritised exactly like a run request.
 *   {"cmd":"stats","id":2}     counters + cache layer stats
 *   {"cmd":"list","id":3}      registered workload names, scales and
 *                              LLC partition policies
 *   {"cmd":"ping","id":4}      liveness probe
 *   {"cmd":"shutdown","id":5}  graceful drain, response after drain
 *
 * Responses:
 *
 *   {"id":1,"ok":true,"queue_s":x,"result":{...}}   run completed;
 *       result is exactly runner/report writeOutcomeJson (or
 *       writeColocationJson for a colocate request)
 *   {"id":1,"ok":false,"rejected":"overloaded","queue_depth":N}
 *       back-pressure: the bounded admission queue was full
 *   {"id":1,"ok":false,"rejected":"shutting-down"}
 *   {"id":0,"ok":false,"error":"..."}               malformed request
 *   {"id":2,"ok":true,"stats":{...}}
 *   {"id":3,"ok":true,"workloads":[...]}
 *   {"id":4,"ok":true,"pong":true}
 *   {"id":5,"ok":true,"shutdown":true}              sent post-drain
 *
 * Unknown request fields are ignored (forward compatibility); an
 * unknown cmd or a missing/unknown workload is an error response.
 */

#ifndef DMPB_SERVE_PROTOCOL_HH
#define DMPB_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "runner/pipeline_service.hh"

namespace dmpb {

/** The request kinds a serve connection may issue. */
enum class ServeCmd : std::uint8_t
{
    Run = 0,
    Colocate,
    Stats,
    List,
    Ping,
    Shutdown,
};

/** One parsed request line. */
struct ServeRequest
{
    ServeCmd cmd = ServeCmd::Run;
    /** Client-chosen correlation id, echoed in the response. */
    std::uint64_t id = 0;
    /** Admission priority: higher pops sooner; FIFO within equal
     *  priorities. */
    std::int64_t priority = 0;
    /** The pipeline request (cmd == Run only). */
    PipelineRequest pipeline;
    /** The co-location request (cmd == Colocate only). */
    ColocationRequest colocation;
};

/**
 * Parse one NDJSON request line. False on malformed JSON or an
 * invalid request shape, with @p error describing why (and @p out.id
 * carrying any id that could still be recovered, so the error
 * response stays correlatable).
 */
bool parseServeRequest(const std::string &line, ServeRequest &out,
                       std::string &error);

/** Response builders (each returns one line, without the '\n'). */
std::string buildRunResponse(std::uint64_t id, double queue_s,
                             const std::string &outcome_json);
std::string buildRejectedResponse(std::uint64_t id, const char *reason,
                                  std::size_t queue_depth);
std::string buildErrorResponse(std::uint64_t id,
                               const std::string &error);
std::string buildPongResponse(std::uint64_t id);
std::string buildShutdownResponse(std::uint64_t id);

} // namespace dmpb

#endif // DMPB_SERVE_PROTOCOL_HH
