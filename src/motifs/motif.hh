/**
 * @file
 * The data-motif abstraction (paper Section II-A).
 *
 * A data motif is a unit of computation performed on initial or
 * intermediate data. Eight classes are identified by the paper:
 * Matrix, Sampling, Transform, Graph, Logic, Set, Sort, Statistics.
 * Each concrete motif here performs *real* computation on generated
 * data with real data types/patterns/distributions, and reports its
 * dynamic behaviour through a TraceContext, exactly as the paper's
 * light-weight POSIX-thread implementations report through PMCs.
 */

#ifndef DMPB_MOTIFS_MOTIF_HH
#define DMPB_MOTIFS_MOTIF_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/units.hh"
#include "datagen/images.hh"
#include "sim/trace.hh"

namespace dmpb {

/** The eight data-motif classes of the paper. */
enum class MotifClass : std::uint8_t
{
    Matrix = 0,
    Sampling,
    Transform,
    Graph,
    Logic,
    Set,
    Sort,
    Statistics,
    NumClasses
};

/** Printable class name. */
const char *motifClassName(MotifClass c);

/**
 * Tunable parameters of a motif instance -- Table I of the paper,
 * plus the convolution-shape extras of Section II-A (filter size,
 * stride, layout).
 */
struct MotifParams
{
    /** @{ Big-data motif parameters (Table I). */
    std::uint64_t data_size = kMiB;      ///< input bytes
    std::uint64_t chunk_size = 256 * kKiB; ///< per-thread block bytes
    std::uint32_t num_tasks = 4;          ///< threads/processes
    /** @} */

    /** @{ AI motif parameters (Table I). */
    std::uint32_t batch_size = 16;
    std::uint64_t total_size = 0;        ///< total elements (0=derive)
    std::uint32_t height = 32;
    std::uint32_t width = 32;
    std::uint32_t channels = 16;
    /** @} */

    /** @{ Convolution/layout extras (Section II-A). */
    std::uint32_t filters = 16;          ///< output channels
    std::uint32_t kernel = 3;            ///< filter spatial size
    std::uint32_t stride = 1;
    DataLayout layout = DataLayout::NCHW;
    /** @} */

    /** Contribution of this motif in a DAG combination (Table I). */
    double weight = 1.0;

    /** Data-generation seed (proxies keep the original data type and
     *  distribution by sharing generator seeds with the workload). */
    std::uint64_t seed = 42;

    /** Sparsity for vector-consuming motifs (Fig. 7/8 experiments). */
    double sparsity = 0.0;
};

/** Abstract data motif. */
class Motif
{
  public:
    virtual ~Motif() = default;

    /** Unique implementation name, e.g. "quick_sort". */
    virtual std::string name() const = 0;

    /** Which of the eight classes this implementation belongs to. */
    virtual MotifClass motifClass() const = 0;

    /** AI motif (true) vs big-data motif (false), per Fig. 2. */
    virtual bool isAi() const = 0;

    /**
     * Execute the motif: generate input data from p.seed, perform
     * the real computation with p.num_tasks logical tasks, and emit
     * every dynamic event into @p ctx.
     *
     * @return a checksum of the computed results (prevents dead-code
     *         elimination; determinism is unit-tested).
     */
    virtual std::uint64_t run(TraceContext &ctx,
                              const MotifParams &p) const = 0;
};

/** All registered motif implementations (big data + AI, Fig. 2). */
const std::vector<const Motif *> &motifRegistry();

/** Look up one implementation by name; nullptr when absent. */
const Motif *findMotif(const std::string &name);

} // namespace dmpb

#endif // DMPB_MOTIFS_MOTIF_HH
