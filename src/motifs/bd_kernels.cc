#include "motifs/bd_kernels.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "base/logging.hh"
#include "motifs/kernel_util.hh"
#include "stack/systolic.hh"

namespace dmpb {
namespace kernels {

// ---------------------------------------------------------------- Sort

namespace {

/** Traced compare of two already-loaded values. */
inline bool
cmpLess(TraceContext &ctx, std::uint64_t x, std::uint64_t y)
{
    ctx.emitOps(OpClass::IntAlu, 1);
    bool less = x < y;
    DMPB_BR(ctx, less);
    return less;
}

} // namespace

void
quickSortU64(TraceContext &ctx, TracedBuffer<std::uint64_t> &a,
             std::size_t lo, std::size_t hi)
{
    if (hi <= lo)
        return;
    // Explicit stack of [lo, hi] inclusive ranges.
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    stack.emplace_back(lo, hi);
    while (!stack.empty()) {
        auto [l, h] = stack.back();
        stack.pop_back();
        while (l < h) {
            if (h - l < 12) {
                // Insertion sort for small ranges.
                for (std::size_t i = l + 1; i <= h; ++i) {
                    std::uint64_t v = a.rd(i);
                    std::size_t j = i;
                    while (j > l && cmpLess(ctx, v, a.rd(j - 1))) {
                        a.wr(j, a.raw()[j - 1]);
                        --j;
                    }
                    a.wr(j, v);
                }
                break;
            }
            // Median-of-three pivot.
            std::size_t mid = l + (h - l) / 2;
            std::uint64_t p0 = a.rd(l), p1 = a.rd(mid), p2 = a.rd(h);
            std::uint64_t pivot =
                std::max(std::min(p0, p1), std::min(std::max(p0, p1), p2));
            ctx.emitOps(OpClass::IntAlu, 4);

            // Hoare partition.
            std::size_t i = l, j = h;
            for (;;) {
                while (cmpLess(ctx, a.rd(i), pivot))
                    ++i;
                while (cmpLess(ctx, pivot, a.rd(j)))
                    --j;
                if (i >= j)
                    break;
                std::uint64_t vi = a.raw()[i], vj = a.raw()[j];
                a.wr(i, vj);
                a.wr(j, vi);
                ++i;
                if (j > 0)
                    --j;
            }
            // Recurse into the smaller side; iterate on the larger.
            if (j - l < h - (j + 1)) {
                if (j > l)
                    stack.emplace_back(l, j);
                l = j + 1;
            } else {
                if (j + 1 < h)
                    stack.emplace_back(j + 1, h);
                h = j;
            }
        }
    }
}

void
mergeSortU64(TraceContext &ctx, TracedBuffer<std::uint64_t> &a)
{
    const std::size_t n = a.size();
    if (n < 2)
        return;
    TracedBuffer<std::uint64_t> tmp(ctx, n);
    TracedBuffer<std::uint64_t> *src = &a, *dst = &tmp;
    for (std::size_t width = 1; width < n; width *= 2) {
        for (std::size_t lo = 0; lo < n; lo += 2 * width) {
            std::size_t mid = std::min(lo + width, n);
            std::size_t hi = std::min(lo + 2 * width, n);
            std::size_t i = lo, j = mid, k = lo;
            while (i < mid && j < hi) {
                std::uint64_t vi = src->rd(i), vj = src->rd(j);
                if (cmpLess(ctx, vj, vi)) {
                    dst->wr(k++, vj);
                    ++j;
                } else {
                    dst->wr(k++, vi);
                    ++i;
                }
            }
            while (i < mid)
                dst->wr(k++, src->rd(i++));
            while (j < hi)
                dst->wr(k++, src->rd(j++));
        }
        std::swap(src, dst);
    }
    if (src != &a) {
        for (std::size_t i = 0; i < n; ++i)
            a.wr(i, src->rd(i));
    }
}

// ------------------------------------------------------------ Sampling

std::size_t
randomSample(TraceContext &ctx, const TracedBuffer<std::uint64_t> &in,
             TracedBuffer<std::uint64_t> &out, double rate, Rng &rng)
{
    dmpb_assert(out.size() >= in.size(), "sample output too small");
    std::size_t k = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        std::uint64_t v = in.rd(i);
        bool take = rng.nextBool(rate);
        ctx.emitOps(OpClass::IntAlu, 2);  // rng advance + compare
        DMPB_BR(ctx, take);
        if (take)
            out.wr(k++, v);
    }
    return k;
}

std::size_t
intervalSample(TraceContext &ctx, const TracedBuffer<std::uint64_t> &in,
               TracedBuffer<std::uint64_t> &out, std::size_t interval)
{
    dmpb_assert(interval > 0, "interval must be positive");
    std::size_t k = 0;
    for (std::size_t i = 0; i < in.size(); i += interval) {
        std::uint64_t v = in.rd(i);
        ctx.emitOps(OpClass::IntAlu, 1);
        out.wr(k++, v);
    }
    return k;
}

// --------------------------------------------------------------- Graph

Graph
graphConstruct(TraceContext &ctx,
               const std::vector<std::pair<std::uint32_t,
                                           std::uint32_t>> &edges,
               std::uint64_t num_vertices)
{
    Graph g;
    g.num_vertices = num_vertices;
    constexpr std::uint64_t kEdgeStride =
        sizeof(std::pair<std::uint32_t, std::uint32_t>);
    VirtualRange edges_va(ctx, edges.size() * kEdgeStride);
    std::vector<std::uint64_t> degree(num_vertices, 0);
    VirtualRange degree_va(ctx, num_vertices * 8);
    // Counting pass.
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const auto &e = edges[i];
        ctx.emitLoadAddr(edges_va.addr(i, kEdgeStride), kEdgeStride);
        ctx.emitLoadAddr(degree_va.addr(e.first), 8);
        ++degree[e.first];
        ctx.emitStoreAddr(degree_va.addr(e.first), 8);
        ctx.emitOps(OpClass::IntAlu, 1);
    }
    // Prefix sum.
    g.out_offset.resize(num_vertices + 1, 0);
    g.out_offset_va = ctx.virtualAlloc((num_vertices + 1) * 8);
    for (std::uint64_t v = 0; v < num_vertices; ++v) {
        ctx.emitLoadAddr(degree_va.addr(v), 8);
        g.out_offset[v + 1] = g.out_offset[v] + degree[v];
        ctx.emitOps(OpClass::IntAlu, 1);
        ctx.emitStoreAddr(g.out_offset_va + (v + 1) * 8, 8);
    }
    // Scatter pass.
    g.out_edges.resize(edges.size());
    g.out_edges_va = ctx.virtualAlloc(edges.size() * 4);
    std::vector<std::uint64_t> cursor(g.out_offset.begin(),
                                      g.out_offset.end() - 1);
    VirtualRange cursor_va(ctx, cursor.size() * 8);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const auto &e = edges[i];
        ctx.emitLoadAddr(edges_va.addr(i, kEdgeStride), kEdgeStride);
        ctx.emitLoadAddr(cursor_va.addr(e.first), 8);
        std::uint64_t pos = cursor[e.first]++;
        ctx.emitStoreAddr(cursor_va.addr(e.first), 8);
        g.out_edges[pos] = e.second;
        ctx.emitStoreAddr(g.out_edges_va + pos * 4, 4);
        ctx.emitOps(OpClass::IntAlu, 1);
    }
    return g;
}

std::uint64_t
graphBfs(TraceContext &ctx, const Graph &g, std::uint32_t root,
         std::vector<std::uint8_t> &visited,
         std::uint64_t visited_va)
{
    dmpb_assert(visited.size() >= g.num_vertices,
                "visited bitmap too small");
    dmpb_assert(g.out_offset_va != 0 && g.out_edges_va != 0,
                "graph has no trace addresses");
    std::vector<std::uint32_t> frontier, next;
    frontier.push_back(root);
    visited[root] = 1;
    ctx.emitStoreAddr(visited_va + root, 1);
    std::uint64_t reached = 1;
    while (!frontier.empty()) {
        next.clear();
        for (std::uint32_t v : frontier) {
            ctx.emitLoadAddr(g.out_offset_va + v * 8, 16);
            std::uint64_t b = g.out_offset[v], e = g.out_offset[v + 1];
            for (std::uint64_t i = b; i < e; ++i) {
                std::uint32_t t = g.out_edges[i];
                ctx.emitLoadAddr(g.out_edges_va + i * 4, 4);
                ctx.emitLoadAddr(visited_va + t, 1);
                bool seen = visited[t] != 0;
                DMPB_BR(ctx, seen);
                if (!seen) {
                    visited[t] = 1;
                    ctx.emitStoreAddr(visited_va + t, 1);
                    next.push_back(t);
                    ++reached;
                }
            }
        }
        frontier.swap(next);
    }
    return reached;
}

// --------------------------------------------------------------- Logic

namespace {

constexpr std::uint32_t kMd5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf,
    0x4787c62a, 0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af,
    0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e,
    0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6,
    0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039,
    0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244, 0x432aff97,
    0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d,
    0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr std::uint32_t kMd5S[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

struct Md5State
{
    std::uint32_t a = 0x67452301;
    std::uint32_t b = 0xefcdab89;
    std::uint32_t c = 0x98badcfe;
    std::uint32_t d = 0x10325476;
};

void
md5Block(TraceContext &ctx, Md5State &st, const std::uint32_t m[16])
{
    std::uint32_t a = st.a, b = st.b, c = st.c, d = st.d;
    for (int i = 0; i < 64; ++i) {
        std::uint32_t f;
        int g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        std::uint32_t tmp = d;
        d = c;
        c = b;
        std::uint32_t x = a + f + kMd5K[i] + m[g];
        b = b + std::rotl(x, static_cast<int>(kMd5S[i]));
        a = tmp;
        // ~7 integer ops per round (bit ops, adds, rotate).
        ctx.emitOps(OpClass::IntAlu, 7);
    }
    st.a += a;
    st.b += b;
    st.c += c;
    st.d += d;
    ctx.emitOps(OpClass::IntAlu, 4);
}

} // namespace

std::uint64_t
md5Digest(TraceContext &ctx, const TracedBuffer<std::uint8_t> &data)
{
    Md5State st;
    const std::uint8_t *raw = data.data();
    const std::size_t n = data.size();
    std::uint32_t m[16];

    std::size_t full = n / 64;
    for (std::size_t blk = 0; blk < full; ++blk) {
        for (int w = 0; w < 16; ++w) {
            ctx.emitLoadAddr(data.elemAddr(blk * 64 + w * 4), 4);
            std::memcpy(&m[w], raw + blk * 64 + w * 4, 4);
        }
        md5Block(ctx, st, m);
    }

    // Padding: 0x80, zeros, 8-byte little-endian bit length.
    std::uint8_t tail[128] = {};
    std::size_t rem = n - full * 64;
    for (std::size_t i = 0; i < rem; ++i) {
        ctx.emitLoadAddr(data.elemAddr(full * 64 + i), 1);
        tail[i] = raw[full * 64 + i];
    }
    tail[rem] = 0x80;
    std::size_t tail_blocks = rem + 9 <= 64 ? 1 : 2;
    std::uint64_t bits = static_cast<std::uint64_t>(n) * 8;
    std::memcpy(tail + tail_blocks * 64 - 8, &bits, 8);
    for (std::size_t blk = 0; blk < tail_blocks; ++blk) {
        std::memcpy(m, tail + blk * 64, 64);
        md5Block(ctx, st, m);
    }

    std::uint8_t digest[16];
    std::memcpy(digest + 0, &st.a, 4);
    std::memcpy(digest + 4, &st.b, 4);
    std::memcpy(digest + 8, &st.c, 4);
    std::memcpy(digest + 12, &st.d, 4);
    std::uint64_t lo, hi;
    std::memcpy(&lo, digest, 8);
    std::memcpy(&hi, digest + 8, 8);
    return lo ^ hi;
}

std::uint64_t
xteaEncrypt(TraceContext &ctx, TracedBuffer<std::uint32_t> &words,
            const std::uint32_t key[4])
{
    constexpr std::uint32_t kDelta = 0x9e3779b9;
    std::uint64_t checksum = 0;
    std::size_t blocks = words.size() / 2;
    for (std::size_t b = 0; b < blocks; ++b) {
        std::uint32_t v0 = words.rd(2 * b);
        std::uint32_t v1 = words.rd(2 * b + 1);
        std::uint32_t sum = 0;
        for (int r = 0; r < 32; ++r) {
            v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^
                  (sum + key[sum & 3]);
            sum += kDelta;
            v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^
                  (sum + key[(sum >> 11) & 3]);
            ctx.emitOps(OpClass::IntAlu, 14);
        }
        words.wr(2 * b, v0);
        words.wr(2 * b + 1, v1);
        checksum = checksumMix(checksum,
                               (static_cast<std::uint64_t>(v0) << 32) |
                               v1);
    }
    return checksum;
}

// ----------------------------------------------------------------- Set

namespace {

enum class SetOp { Union, Intersect, Difference };

std::size_t
setMerge(TraceContext &ctx, const TracedBuffer<std::uint64_t> &a,
         const TracedBuffer<std::uint64_t> &b,
         TracedBuffer<std::uint64_t> &out, SetOp op)
{
    std::size_t i = 0, j = 0, k = 0;
    while (i < a.size() && j < b.size()) {
        std::uint64_t va = a.rd(i), vb = b.rd(j);
        ctx.emitOps(OpClass::IntAlu, 1);
        bool less = va < vb;
        DMPB_BR(ctx, less);
        if (less) {
            if (op != SetOp::Intersect)
                out.wr(k++, va);
            ++i;
        } else {
            ctx.emitOps(OpClass::IntAlu, 1);
            bool greater = vb < va;
            DMPB_BR(ctx, greater);
            if (greater) {
                if (op == SetOp::Union)
                    out.wr(k++, vb);
                ++j;
            } else {
                if (op != SetOp::Difference)
                    out.wr(k++, va);
                ++i;
                ++j;
            }
        }
    }
    if (op != SetOp::Intersect) {
        while (i < a.size())
            out.wr(k++, a.rd(i++));
    }
    if (op == SetOp::Union) {
        while (j < b.size())
            out.wr(k++, b.rd(j++));
    }
    return k;
}

} // namespace

std::size_t
setUnion(TraceContext &ctx, const TracedBuffer<std::uint64_t> &a,
         const TracedBuffer<std::uint64_t> &b,
         TracedBuffer<std::uint64_t> &out)
{
    return setMerge(ctx, a, b, out, SetOp::Union);
}

std::size_t
setIntersect(TraceContext &ctx, const TracedBuffer<std::uint64_t> &a,
             const TracedBuffer<std::uint64_t> &b,
             TracedBuffer<std::uint64_t> &out)
{
    return setMerge(ctx, a, b, out, SetOp::Intersect);
}

std::size_t
setDifference(TraceContext &ctx, const TracedBuffer<std::uint64_t> &a,
              const TracedBuffer<std::uint64_t> &b,
              TracedBuffer<std::uint64_t> &out)
{
    return setMerge(ctx, a, b, out, SetOp::Difference);
}

// ---------------------------------------------------------- Statistics

std::size_t
hashGroupStats(TraceContext &ctx, const TracedBuffer<std::uint32_t> &keys,
               const TracedBuffer<float> &values,
               std::vector<std::uint32_t> &out_keys,
               std::vector<std::uint64_t> &out_counts,
               std::vector<double> &out_sums)
{
    dmpb_assert(keys.size() == values.size(),
                "group-by key/value size mismatch");
    constexpr std::uint32_t kEmpty = 0xffffffffu;
    struct Slot
    {
        std::uint32_t key = 0xffffffffu;
        std::uint64_t count = 0;
        double sum = 0.0;
    };
    std::size_t cap = std::bit_ceil(keys.size() * 2 + 16);
    std::vector<Slot> table(cap);
    VirtualRange table_va(ctx, cap * sizeof(Slot));
    const std::uint64_t mask = cap - 1;

    for (std::size_t i = 0; i < keys.size(); ++i) {
        std::uint32_t key = keys.rd(i);
        float val = values.rd(i);
        std::uint64_t h = mix64(key) & mask;
        ctx.emitOps(OpClass::IntAlu, 3);  // hash + mask
        for (;;) {
            Slot &slot = table[h];
            ctx.emitLoadAddr(table_va.addr(h, sizeof(Slot)),
                             sizeof(Slot));
            bool hit = slot.key == key;
            DMPB_BR(ctx, hit);
            if (hit) {
                ++slot.count;
                slot.sum += val;
                ctx.emitOps(OpClass::IntAlu, 1);
                ctx.emitOps(OpClass::FpAlu, 1);
                ctx.emitStoreAddr(table_va.addr(h, sizeof(Slot)),
                                  sizeof(Slot));
                break;
            }
            bool empty = slot.key == kEmpty;
            DMPB_BR(ctx, empty);
            if (empty) {
                slot.key = key;
                slot.count = 1;
                slot.sum = val;
                ctx.emitStoreAddr(table_va.addr(h, sizeof(Slot)),
                                  sizeof(Slot));
                break;
            }
            h = (h + 1) & mask;
            ctx.emitOps(OpClass::IntAlu, 1);
        }
    }

    out_keys.clear();
    out_counts.clear();
    out_sums.clear();
    for (std::size_t s = 0; s < table.size(); ++s) {
        const Slot &slot = table[s];
        ctx.emitLoadAddr(table_va.addr(s, sizeof(Slot)),
                         sizeof(Slot));
        bool used = slot.key != kEmpty;
        DMPB_BR(ctx, used);
        if (used) {
            out_keys.push_back(slot.key);
            out_counts.push_back(slot.count);
            out_sums.push_back(slot.sum);
        }
    }
    return out_keys.size();
}

double
probabilityStats(TraceContext &ctx,
                 const TracedBuffer<std::uint32_t> &tokens,
                 std::uint32_t vocab)
{
    std::vector<std::uint64_t> hist(vocab, 0);
    VirtualRange hist_va(ctx, static_cast<std::uint64_t>(vocab) * 8);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        std::uint32_t t = tokens.rd(i);
        dmpb_assert(t < vocab, "token outside vocabulary");
        ctx.emitLoadAddr(hist_va.addr(t), 8);
        ++hist[t];
        ctx.emitStoreAddr(hist_va.addr(t), 8);
        ctx.emitOps(OpClass::IntAlu, 1);
    }
    double total = static_cast<double>(tokens.size());
    double entropy = 0.0;
    for (std::uint32_t w = 0; w < vocab; ++w) {
        ctx.emitLoadAddr(hist_va.addr(w), 8);
        bool nonzero = hist[w] != 0;
        DMPB_BR(ctx, nonzero);
        if (nonzero) {
            double p = static_cast<double>(hist[w]) / total;
            entropy -= p * std::log2(p);
            ctx.emitOps(OpClass::FpMul, 2);  // divide + multiply
            ctx.emitOps(OpClass::FpAlu, 6);  // log2 approx + accumulate
        }
    }
    return entropy;
}

std::pair<std::uint64_t, std::uint64_t>
minMaxScan(TraceContext &ctx, const TracedBuffer<std::uint64_t> &a)
{
    dmpb_assert(!a.empty(), "min/max of empty input");
    std::uint64_t mn = a.rd(0), mx = mn;
    for (std::size_t i = 1; i < a.size(); ++i) {
        std::uint64_t v = a.rd(i);
        ctx.emitOps(OpClass::IntAlu, 2);
        bool lower = v < mn;
        DMPB_BR(ctx, lower);
        if (lower)
            mn = v;
        bool higher = v > mx;
        DMPB_BR(ctx, higher);
        if (higher)
            mx = v;
    }
    return {mn, mx};
}

// -------------------------------------------------------------- Matrix

void
matMul(TraceContext &ctx, const TracedBuffer<float> &a,
       const TracedBuffer<float> &b, TracedBuffer<float> &c,
       std::size_t m, std::size_t k, std::size_t n)
{
    dmpb_assert(a.size() >= m * k && b.size() >= k * n &&
                c.size() >= m * n, "matmul shape mismatch");
    if (ctx.machine().accel.present) {
        systolic::matMul(ctx, a, b, c, m, k, n);
        return;
    }
    for (std::size_t i = 0; i < m * n; ++i)
        c.raw()[i] = 0.0f;
    // i-k-j loop order: streaming access over B and C rows.
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            float av = a.rd(i * k + kk);
            const std::size_t b_row = kk * n;
            const std::size_t c_row = i * n;
            for (std::size_t j = 0; j < n; ++j) {
                float bv;
                float &cv = c.rmwPair(c_row + j, b, b_row + j, bv);
                cv += av * bv;
            }
            // Bulk charge per row sweep (same totals as per-MAC).
            ctx.emitOps(OpClass::FpMul, n);
            ctx.emitOps(OpClass::FpAlu, n);
        }
    }
}

double
euclideanAssign(TraceContext &ctx, const TracedBuffer<float> &points,
                std::size_t num_points, std::size_t dim,
                const TracedBuffer<float> &centroids,
                std::size_t num_centroids,
                TracedBuffer<std::uint32_t> &assignment)
{
    dmpb_assert(points.size() >= num_points * dim, "points too small");
    dmpb_assert(centroids.size() >= num_centroids * dim,
                "centroids too small");
    dmpb_assert(assignment.size() >= num_points, "assignment too small");
    double sse = 0.0;
    for (std::size_t p = 0; p < num_points; ++p) {
        double best = 0.0;
        std::uint32_t best_c = 0;
        for (std::size_t c = 0; c < num_centroids; ++c) {
            double dist = 0.0;
            for (std::size_t d = 0; d < dim; ++d) {
                float cv;
                float pv = points.rdPair(p * dim + d, centroids,
                                         c * dim + d, cv);
                double diff = static_cast<double>(pv) - cv;
                dist += diff * diff;
            }
            // Bulk charge per distance: sub+add and one mul per
            // dimension (same totals as per-element emission).
            ctx.emitOps(OpClass::FpAlu, 2 * dim);
            ctx.emitOps(OpClass::FpMul, dim);
            bool better = c == 0 || dist < best;
            DMPB_BR(ctx, better);
            if (better) {
                best = dist;
                best_c = static_cast<std::uint32_t>(c);
            }
        }
        assignment.wr(p, best_c);
        sse += best;
        ctx.emitOps(OpClass::FpAlu, 1);
    }
    return sse;
}

double
cosineSimilarity(TraceContext &ctx, const TracedBuffer<float> &rows,
                 std::size_t num_rows, std::size_t dim)
{
    dmpb_assert(num_rows >= 2, "cosine needs at least two rows");
    double acc = 0.0;
    std::size_t pairs = 0;
    for (std::size_t r = 0; r + 1 < num_rows; r += 2) {
        double dot = 0.0, na = 0.0, nb = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            float y;
            float x = rows.rdPair(r * dim + d, rows,
                                  (r + 1) * dim + d, y);
            dot += static_cast<double>(x) * y;
            na += static_cast<double>(x) * x;
            nb += static_cast<double>(y) * y;
        }
        // Bulk charge per row pair (same totals as per-element).
        ctx.emitOps(OpClass::FpMul, 3 * dim);
        ctx.emitOps(OpClass::FpAlu, 3 * dim);
        double denom = std::sqrt(na) * std::sqrt(nb);
        ctx.emitOps(OpClass::FpMul, 3);
        bool ok = denom > 0.0;
        DMPB_BR(ctx, ok);
        if (ok) {
            acc += dot / denom;
            ++pairs;
        }
    }
    return pairs ? acc / static_cast<double>(pairs) : 0.0;
}

// ----------------------------------------------------------- Transform

void
fftRadix2(TraceContext &ctx, TracedBuffer<double> &reim, std::size_t n,
          bool inverse)
{
    dmpb_assert(n >= 2 && std::has_single_bit(n),
                "FFT size must be a power of two >= 2");
    dmpb_assert(reim.size() >= 2 * n, "FFT buffer too small");

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        ctx.emitOps(OpClass::IntAlu, 3);
        bool do_swap = i < j;
        DMPB_BR(ctx, do_swap);
        if (do_swap) {
            double re_i = reim.rd(2 * i), im_i = reim.rd(2 * i + 1);
            double re_j = reim.rd(2 * j), im_j = reim.rd(2 * j + 1);
            reim.wr(2 * i, re_j);
            reim.wr(2 * i + 1, im_j);
            reim.wr(2 * j, re_i);
            reim.wr(2 * j + 1, im_i);
        }
    }

    // Twiddle table (setup; accesses during butterflies are traced).
    std::vector<double> tw_re(n / 2), tw_im(n / 2);
    VirtualRange tw_re_va(ctx, n / 2 * 8), tw_im_va(ctx, n / 2 * 8);
    double sign = inverse ? 1.0 : -1.0;
    for (std::size_t k = 0; k < n / 2; ++k) {
        double ang = sign * 2.0 * M_PI * static_cast<double>(k) /
                     static_cast<double>(n);
        tw_re[k] = std::cos(ang);
        tw_im[k] = std::sin(ang);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        std::size_t step = n / len;
        for (std::size_t i = 0; i < n; i += len) {
            for (std::size_t k = 0; k < len / 2; ++k) {
                std::size_t a = i + k, b = i + k + len / 2;
                std::size_t tw = k * step;
                ctx.emitLoadAddr(tw_re_va.addr(tw), 8);
                ctx.emitLoadAddr(tw_im_va.addr(tw), 8);
                double ar = reim.rd(2 * a), ai = reim.rd(2 * a + 1);
                double br = reim.rd(2 * b), bi = reim.rd(2 * b + 1);
                double tr = br * tw_re[tw] - bi * tw_im[tw];
                double ti = br * tw_im[tw] + bi * tw_re[tw];
                reim.wr(2 * a, ar + tr);
                reim.wr(2 * a + 1, ai + ti);
                reim.wr(2 * b, ar - tr);
                reim.wr(2 * b + 1, ai - ti);
                ctx.emitOps(OpClass::FpMul, 4);
                ctx.emitOps(OpClass::FpAlu, 6);
            }
        }
    }

    if (inverse) {
        double inv = 1.0 / static_cast<double>(n);
        for (std::size_t i = 0; i < 2 * n; ++i) {
            reim.wr(i, reim.rd(i) * inv);
            ctx.emitOps(OpClass::FpMul, 1);
        }
    }
}

void
dct8x8Blocks(TraceContext &ctx, TracedBuffer<float> &samples)
{
    // Precompute the 8x8 DCT-II basis (setup, untraced).
    static thread_local float basis[8][8];
    static thread_local bool init = false;
    if (!init) {
        for (int k = 0; k < 8; ++k) {
            double ck = k == 0 ? std::sqrt(0.125) : 0.5;
            for (int x = 0; x < 8; ++x) {
                basis[k][x] = static_cast<float>(
                    ck * std::cos((2 * x + 1) * k * M_PI / 16.0));
            }
        }
        init = true;
    }

    std::size_t blocks = samples.size() / 64;
    float tmp[64], out[64];
    VirtualRange basis_va(ctx, 64 * 4);
    VirtualRange tmp_va(ctx, 64 * 4), out_va(ctx, 64 * 4);
    for (std::size_t b = 0; b < blocks; ++b) {
        std::size_t base = b * 64;
        // Row transform.
        for (int r = 0; r < 8; ++r) {
            for (int k = 0; k < 8; ++k) {
                float acc = 0.0f;
                for (int x = 0; x < 8; ++x) {
                    float v = samples.rd(base + r * 8 + x);
                    ctx.emitLoadAddr(basis_va.addr(k * 8 + x, 4), 4);
                    acc += v * basis[k][x];
                    ctx.emitOps(OpClass::FpMul, 1);
                    ctx.emitOps(OpClass::FpAlu, 1);
                }
                tmp[k * 8 + r] = acc;  // transpose as we go
                ctx.emitStoreAddr(tmp_va.addr(k * 8 + r, 4), 4);
            }
        }
        // Column transform (on the transposed rows).
        for (int r = 0; r < 8; ++r) {
            for (int k = 0; k < 8; ++k) {
                float acc = 0.0f;
                for (int x = 0; x < 8; ++x) {
                    ctx.emitLoadAddr(tmp_va.addr(r * 8 + x, 4), 4);
                    ctx.emitLoadAddr(basis_va.addr(k * 8 + x, 4), 4);
                    acc += tmp[r * 8 + x] * basis[k][x];
                    ctx.emitOps(OpClass::FpMul, 1);
                    ctx.emitOps(OpClass::FpAlu, 1);
                }
                out[k * 8 + r] = acc;
                ctx.emitStoreAddr(out_va.addr(k * 8 + r, 4), 4);
            }
        }
        for (int i = 0; i < 64; ++i)
            samples.wr(base + i, out[i]);
    }
}

} // namespace kernels
} // namespace dmpb
