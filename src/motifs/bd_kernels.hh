/**
 * @file
 * Instrumented big-data computation kernels.
 *
 * These free functions are the shared units of computation: the big-
 * data motif implementations (Fig. 2, left) wrap them with data
 * generation, and the hadooplite "real" workloads call the very same
 * kernels from inside the heavy stack -- mirroring the paper's
 * observation that workload hotspots *are* motif computations.
 *
 * Every kernel performs the real computation (results are verified in
 * unit tests) while reporting loads/stores/ops/branches to a
 * TraceContext.
 */

#ifndef DMPB_MOTIFS_BD_KERNELS_HH
#define DMPB_MOTIFS_BD_KERNELS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "base/rng.hh"
#include "datagen/graph.hh"
#include "sim/traced_buffer.hh"

namespace dmpb {
namespace kernels {

/** @{ Sort motif. */

/** In-place traced quicksort (Hoare partition, iterative). */
void quickSortU64(TraceContext &ctx, TracedBuffer<std::uint64_t> &a,
                  std::size_t lo, std::size_t hi);

/** Traced bottom-up merge sort; stable. */
void mergeSortU64(TraceContext &ctx, TracedBuffer<std::uint64_t> &a);

/** @} */

/** @{ Sampling motif. */

/** Bernoulli sampling at @p rate; returns selected count. */
std::size_t randomSample(TraceContext &ctx,
                         const TracedBuffer<std::uint64_t> &in,
                         TracedBuffer<std::uint64_t> &out, double rate,
                         Rng &rng);

/** Keep every @p interval-th element; returns selected count. */
std::size_t intervalSample(TraceContext &ctx,
                           const TracedBuffer<std::uint64_t> &in,
                           TracedBuffer<std::uint64_t> &out,
                           std::size_t interval);

/** @} */

/** @{ Graph motif. */

/** Build a CSR graph from an edge list (traced counting + scatter). */
Graph graphConstruct(TraceContext &ctx,
                     const std::vector<std::pair<std::uint32_t,
                                                 std::uint32_t>> &edges,
                     std::uint64_t num_vertices);

/**
 * Traced breadth-first traversal from @p root.
 *
 * @p visited_va is the simulated address of the caller-owned
 * @p visited bitmap (one byte per vertex); the graph's CSR arrays
 * must carry their own trace addresses (out_offset_va/out_edges_va).
 * @return number of vertices reached (root included).
 */
std::uint64_t graphBfs(TraceContext &ctx, const Graph &g,
                       std::uint32_t root,
                       std::vector<std::uint8_t> &visited,
                       std::uint64_t visited_va);

/** @} */

/** @{ Logic motif. */

/** Real MD5 (RFC 1321) over @p data; digest folded to 64 bits. */
std::uint64_t md5Digest(TraceContext &ctx,
                        const TracedBuffer<std::uint8_t> &data);

/** Real XTEA encryption (64 rounds/block) in place over pairs of
 *  32-bit words; returns checksum of ciphertext. */
std::uint64_t xteaEncrypt(TraceContext &ctx,
                          TracedBuffer<std::uint32_t> &words,
                          const std::uint32_t key[4]);

/** @} */

/** @{ Set motif (inputs must be sorted and unique). */

std::size_t setUnion(TraceContext &ctx,
                     const TracedBuffer<std::uint64_t> &a,
                     const TracedBuffer<std::uint64_t> &b,
                     TracedBuffer<std::uint64_t> &out);

std::size_t setIntersect(TraceContext &ctx,
                         const TracedBuffer<std::uint64_t> &a,
                         const TracedBuffer<std::uint64_t> &b,
                         TracedBuffer<std::uint64_t> &out);

std::size_t setDifference(TraceContext &ctx,
                          const TracedBuffer<std::uint64_t> &a,
                          const TracedBuffer<std::uint64_t> &b,
                          TracedBuffer<std::uint64_t> &out);

/** @} */

/** @{ Statistics motif. */

/** Open-addressing group-by: count and sum per key.
 *  @return number of distinct keys. */
std::size_t hashGroupStats(TraceContext &ctx,
                           const TracedBuffer<std::uint32_t> &keys,
                           const TracedBuffer<float> &values,
                           std::vector<std::uint32_t> &out_keys,
                           std::vector<std::uint64_t> &out_counts,
                           std::vector<double> &out_sums);

/** Histogram + empirical probabilities + entropy over tokens. */
double probabilityStats(TraceContext &ctx,
                        const TracedBuffer<std::uint32_t> &tokens,
                        std::uint32_t vocab);

/** Traced min/max scan. */
std::pair<std::uint64_t, std::uint64_t>
minMaxScan(TraceContext &ctx, const TracedBuffer<std::uint64_t> &a);

/** @} */

/** @{ Matrix motif. */

/** Dense single-precision matmul C[m x n] = A[m x k] * B[k x n],
 *  blocked; buffers are row-major. */
void matMul(TraceContext &ctx, const TracedBuffer<float> &a,
            const TracedBuffer<float> &b, TracedBuffer<float> &c,
            std::size_t m, std::size_t k, std::size_t n);

/**
 * Euclidean distances from every row of @p points to every centroid;
 * writes the arg-min assignment per point.
 * @return sum of squared distances (K-means objective contribution).
 */
double euclideanAssign(TraceContext &ctx, const TracedBuffer<float> &points,
                       std::size_t num_points, std::size_t dim,
                       const TracedBuffer<float> &centroids,
                       std::size_t num_centroids,
                       TracedBuffer<std::uint32_t> &assignment);

/** Cosine similarity between consecutive row pairs; returns mean. */
double cosineSimilarity(TraceContext &ctx, const TracedBuffer<float> &rows,
                        std::size_t num_rows, std::size_t dim);

/** @} */

/** @{ Transform motif. */

/** In-place iterative radix-2 FFT over interleaved re/im doubles
 *  (size 2*n for n complex points, n a power of two);
 *  @p inverse selects the IFFT. */
void fftRadix2(TraceContext &ctx, TracedBuffer<double> &reim,
               std::size_t n, bool inverse);

/** Separable 8x8 2-D DCT-II applied to every 64-sample block. */
void dct8x8Blocks(TraceContext &ctx, TracedBuffer<float> &samples);

/** @} */

} // namespace kernels
} // namespace dmpb

#endif // DMPB_MOTIFS_BD_KERNELS_HH
