#include "motifs/ai_kernels.hh"

#include <cmath>

#include "base/logging.hh"
#include "motifs/kernel_util.hh"
#include "stack/systolic.hh"

namespace dmpb {
namespace kernels {

namespace {

/** Charge the cost of one transcendental evaluation. */
inline void
chargeTranscendental(TraceContext &ctx)
{
    ctx.emitOps(OpClass::FpMul, 2);
    ctx.emitOps(OpClass::FpAlu, 4);
}

} // namespace

std::uint32_t
convOutDim(std::uint32_t in, std::uint32_t kernel, std::uint32_t stride,
           std::uint32_t pad)
{
    dmpb_assert(in + 2 * pad >= kernel, "window larger than padded input");
    return (in + 2 * pad - kernel) / stride + 1;
}

Shape4
conv2d(TraceContext &ctx, const TracedBuffer<float> &in,
       const Shape4 &ishape, const TracedBuffer<float> &weights,
       const TracedBuffer<float> &bias, TracedBuffer<float> &out,
       std::uint32_t filters, std::uint32_t kernel, std::uint32_t stride,
       std::uint32_t pad, DataLayout layout)
{
    if (ctx.machine().accel.present) {
        return systolic::conv2d(ctx, in, ishape, weights, bias, out,
                                filters, kernel, stride, pad, layout);
    }
    Shape4 oshape{ishape.n, filters,
                  convOutDim(ishape.h, kernel, stride, pad),
                  convOutDim(ishape.w, kernel, stride, pad)};
    dmpb_assert(in.size() >= ishape.elems(), "conv input too small");
    dmpb_assert(weights.size() >=
                    static_cast<std::size_t>(filters) * ishape.c *
                        kernel * kernel,
                "conv weights too small");
    dmpb_assert(out.size() >= oshape.elems(), "conv output too small");

    const std::size_t wstride_o =
        static_cast<std::size_t>(ishape.c) * kernel * kernel;
    // Per-x element stride of the input layout: rows are walked with
    // additive index updates (same indices as Shape4::index, without
    // re-deriving the full polynomial per element).
    const std::size_t xstep =
        layout == DataLayout::NCHW ? 1 : ishape.c;
    for (std::uint32_t n = 0; n < ishape.n; ++n) {
        for (std::uint32_t o = 0; o < filters; ++o) {
            for (std::uint32_t oy = 0; oy < oshape.h; ++oy) {
                for (std::uint32_t ox = 0; ox < oshape.w; ++ox) {
                    float acc = 0.0f;
                    std::uint64_t macs = 0;
                    const std::int64_t ix0 =
                        static_cast<std::int64_t>(ox) * stride - pad;
                    const std::uint32_t kx_lo = static_cast<std::uint32_t>(
                        ix0 < 0 ? -ix0 : 0);
                    const std::int64_t kx_hi_s =
                        static_cast<std::int64_t>(ishape.w) - ix0;
                    const std::uint32_t kx_hi = static_cast<std::uint32_t>(
                        std::min<std::int64_t>(kernel,
                                               std::max<std::int64_t>(
                                                   0, kx_hi_s)));
                    for (std::uint32_t c = 0; c < ishape.c; ++c) {
                        for (std::uint32_t ky = 0; ky < kernel; ++ky) {
                            std::int64_t iy =
                                static_cast<std::int64_t>(oy) * stride +
                                ky - pad;
                            if (iy < 0 ||
                                iy >= static_cast<std::int64_t>(
                                          ishape.h)) {
                                continue;
                            }
                            const std::size_t in_row = ishape.index(
                                layout, n, c,
                                static_cast<std::uint32_t>(iy), 0);
                            const std::size_t w_row =
                                o * wstride_o +
                                (static_cast<std::size_t>(c) * kernel +
                                 ky) * kernel;
                            for (std::uint32_t kx = kx_lo; kx < kx_hi;
                                 ++kx) {
                                const std::size_t ix =
                                    static_cast<std::size_t>(ix0 + kx);
                                float wv;
                                float iv = in.rdPair(
                                    in_row + ix * xstep, weights,
                                    w_row + kx, wv);
                                acc += iv * wv;
                                ++macs;
                            }
                        }
                    }
                    // One fused mul+add charge per MAC, emitted in
                    // bulk per output element (same totals as per-MAC
                    // emission, a fraction of the reporting cost).
                    ctx.emitOps(OpClass::FpMul, macs);
                    if (!bias.empty()) {
                        acc += bias.rd(o);
                        ++macs;
                    }
                    ctx.emitOps(OpClass::FpAlu, macs);
                    out.wr(oshape.index(layout, n, o, oy, ox), acc);
                }
            }
        }
    }
    return oshape;
}

namespace {

template <bool kMax>
Shape4
pool2d(TraceContext &ctx, const TracedBuffer<float> &in,
       const Shape4 &ishape, TracedBuffer<float> &out,
       std::uint32_t kernel, std::uint32_t stride, DataLayout layout)
{
    Shape4 oshape{ishape.n, ishape.c,
                  convOutDim(ishape.h, kernel, stride, 0),
                  convOutDim(ishape.w, kernel, stride, 0)};
    dmpb_assert(out.size() >= oshape.elems(), "pool output too small");
    for (std::uint32_t n = 0; n < ishape.n; ++n) {
        for (std::uint32_t c = 0; c < ishape.c; ++c) {
            for (std::uint32_t oy = 0; oy < oshape.h; ++oy) {
                for (std::uint32_t ox = 0; ox < oshape.w; ++ox) {
                    float acc = kMax ? -1e30f : 0.0f;
                    for (std::uint32_t ky = 0; ky < kernel; ++ky) {
                        for (std::uint32_t kx = 0; kx < kernel; ++kx) {
                            float v = in.rd(ishape.index(
                                layout, n, c, oy * stride + ky,
                                ox * stride + kx));
                            if (kMax) {
                                bool larger = v > acc;
                                DMPB_BR(ctx, larger);
                                if (larger)
                                    acc = v;
                            } else {
                                acc += v;
                            }
                        }
                    }
                    if (!kMax) {
                        // Bulk charge: one add per window element,
                        // one divide (same totals as per-element).
                        ctx.emitOps(OpClass::FpAlu,
                                    static_cast<std::uint64_t>(kernel) *
                                        kernel);
                        acc /= static_cast<float>(kernel * kernel);
                        ctx.emitOps(OpClass::FpMul, 1);
                    }
                    out.wr(oshape.index(layout, n, c, oy, ox), acc);
                }
            }
        }
    }
    return oshape;
}

} // namespace

Shape4
maxPool2d(TraceContext &ctx, const TracedBuffer<float> &in,
          const Shape4 &ishape, TracedBuffer<float> &out,
          std::uint32_t kernel, std::uint32_t stride, DataLayout layout)
{
    return pool2d<true>(ctx, in, ishape, out, kernel, stride, layout);
}

Shape4
avgPool2d(TraceContext &ctx, const TracedBuffer<float> &in,
          const Shape4 &ishape, TracedBuffer<float> &out,
          std::uint32_t kernel, std::uint32_t stride, DataLayout layout)
{
    return pool2d<false>(ctx, in, ishape, out, kernel, stride, layout);
}

void
fullyConnected(TraceContext &ctx, const TracedBuffer<float> &in,
               std::size_t batch, std::size_t in_dim,
               const TracedBuffer<float> &weights,
               const TracedBuffer<float> &bias, TracedBuffer<float> &out,
               std::size_t out_dim)
{
    if (ctx.machine().accel.present) {
        systolic::fullyConnected(ctx, in, batch, in_dim, weights, bias,
                                 out, out_dim);
        return;
    }
    dmpb_assert(in.size() >= batch * in_dim, "fc input too small");
    dmpb_assert(weights.size() >= out_dim * in_dim,
                "fc weights too small");
    dmpb_assert(out.size() >= batch * out_dim, "fc output too small");
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t o = 0; o < out_dim; ++o) {
            float acc = 0.0f;
            for (std::size_t i = 0; i < in_dim; ++i) {
                float w;
                float x = in.rdPair(b * in_dim + i, weights,
                                    o * in_dim + i, w);
                acc += x * w;
            }
            // Bulk charge per dot product (same totals as per-MAC).
            ctx.emitOps(OpClass::FpMul, in_dim);
            std::uint64_t adds = in_dim;
            if (!bias.empty()) {
                acc += bias.rd(o);
                ++adds;
            }
            ctx.emitOps(OpClass::FpAlu, adds);
            out.wr(b * out_dim + o, acc);
        }
    }
}

void
relu(TraceContext &ctx, TracedBuffer<float> &x)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        float v = x.rd(i);
        bool neg = v < 0.0f;
        DMPB_BR(ctx, neg);
        if (neg)
            x.wr(i, 0.0f);
    }
}

void
sigmoid(TraceContext &ctx, TracedBuffer<float> &x)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        float v = x.rd(i);
        chargeTranscendental(ctx);
        ctx.emitOps(OpClass::FpAlu, 1);
        x.wr(i, 1.0f / (1.0f + std::exp(-v)));
    }
}

void
tanhAct(TraceContext &ctx, TracedBuffer<float> &x)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        float v = x.rd(i);
        chargeTranscendental(ctx);
        x.wr(i, std::tanh(v));
    }
}

void
softmax(TraceContext &ctx, TracedBuffer<float> &x, std::size_t rows,
        std::size_t dim)
{
    dmpb_assert(x.size() >= rows * dim, "softmax shape mismatch");
    for (std::size_t r = 0; r < rows; ++r) {
        float mx = -1e30f;
        for (std::size_t d = 0; d < dim; ++d) {
            float v = x.rd(r * dim + d);
            bool larger = v > mx;
            DMPB_BR(ctx, larger);
            if (larger)
                mx = v;
        }
        float sum = 0.0f;
        for (std::size_t d = 0; d < dim; ++d) {
            float e = std::exp(x.rd(r * dim + d) - mx);
            chargeTranscendental(ctx);
            ctx.emitOps(OpClass::FpAlu, 2);
            x.wr(r * dim + d, e);
            sum += e;
        }
        for (std::size_t d = 0; d < dim; ++d) {
            x.wr(r * dim + d, x.rd(r * dim + d) / sum);
            ctx.emitOps(OpClass::FpMul, 1);
        }
    }
}

std::size_t
dropout(TraceContext &ctx, TracedBuffer<float> &x, double drop_rate,
        Rng &rng)
{
    dmpb_assert(drop_rate >= 0.0 && drop_rate < 1.0,
                "drop rate must be in [0,1)");
    float scale = static_cast<float>(1.0 / (1.0 - drop_rate));
    std::size_t kept = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        bool drop = rng.nextBool(drop_rate);
        ctx.emitOps(OpClass::IntAlu, 2);
        DMPB_BR(ctx, drop);
        if (drop) {
            x.wr(i, 0.0f);
        } else {
            x.wr(i, x.rd(i) * scale);
            ctx.emitOps(OpClass::FpMul, 1);
            ++kept;
        }
    }
    return kept;
}

void
batchNorm(TraceContext &ctx, TracedBuffer<float> &x, const Shape4 &shape,
          const TracedBuffer<float> &gamma,
          const TracedBuffer<float> &beta, float epsilon,
          DataLayout layout)
{
    dmpb_assert(x.size() >= shape.elems(), "batchnorm input too small");
    const double count =
        static_cast<double>(shape.n) * shape.h * shape.w;
    for (std::uint32_t c = 0; c < shape.c; ++c) {
        double sum = 0.0, sq = 0.0;
        for (std::uint32_t n = 0; n < shape.n; ++n) {
            for (std::uint32_t y = 0; y < shape.h; ++y) {
                for (std::uint32_t xw = 0; xw < shape.w; ++xw) {
                    float v = x.rd(shape.index(layout, n, c, y, xw));
                    sum += v;
                    sq += static_cast<double>(v) * v;
                    ctx.emitOps(OpClass::FpAlu, 2);
                    ctx.emitOps(OpClass::FpMul, 1);
                }
            }
        }
        double mean = sum / count;
        double var = sq / count - mean * mean;
        if (var < 0.0)
            var = 0.0;
        float inv_std =
            static_cast<float>(1.0 / std::sqrt(var + epsilon));
        chargeTranscendental(ctx);
        float g = gamma.empty() ? 1.0f : gamma.rd(c);
        float b = beta.empty() ? 0.0f : beta.rd(c);
        for (std::uint32_t n = 0; n < shape.n; ++n) {
            for (std::uint32_t y = 0; y < shape.h; ++y) {
                for (std::uint32_t xw = 0; xw < shape.w; ++xw) {
                    std::size_t idx = shape.index(layout, n, c, y, xw);
                    float v = x.rd(idx);
                    v = (v - static_cast<float>(mean)) * inv_std * g + b;
                    ctx.emitOps(OpClass::FpAlu, 2);
                    ctx.emitOps(OpClass::FpMul, 2);
                    x.wr(idx, v);
                }
            }
        }
    }
}

void
cosineNorm(TraceContext &ctx, TracedBuffer<float> &x, std::size_t rows,
           std::size_t dim)
{
    dmpb_assert(x.size() >= rows * dim, "cosine-norm shape mismatch");
    for (std::size_t r = 0; r < rows; ++r) {
        double norm = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            float v = x.rd(r * dim + d);
            norm += static_cast<double>(v) * v;
            ctx.emitOps(OpClass::FpMul, 1);
            ctx.emitOps(OpClass::FpAlu, 1);
        }
        chargeTranscendental(ctx);
        float inv = norm > 0.0
                        ? static_cast<float>(1.0 / std::sqrt(norm))
                        : 0.0f;
        for (std::size_t d = 0; d < dim; ++d) {
            x.wr(r * dim + d, x.rd(r * dim + d) * inv);
            ctx.emitOps(OpClass::FpMul, 1);
        }
    }
}

double
reduceSum(TraceContext &ctx, const TracedBuffer<float> &x)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sum += x.rd(i);
        ctx.emitOps(OpClass::FpAlu, 1);
    }
    return sum;
}

float
reduceMax(TraceContext &ctx, const TracedBuffer<float> &x)
{
    dmpb_assert(!x.empty(), "reduceMax of empty input");
    float mx = x.rd(0);
    for (std::size_t i = 1; i < x.size(); ++i) {
        float v = x.rd(i);
        bool larger = v > mx;
        DMPB_BR(ctx, larger);
        if (larger)
            mx = v;
    }
    return mx;
}

void
elementWiseMul(TraceContext &ctx, const TracedBuffer<float> &a,
               const TracedBuffer<float> &b, TracedBuffer<float> &out)
{
    dmpb_assert(a.size() == b.size() && out.size() >= a.size(),
                "elementwise size mismatch");
    for (std::size_t i = 0; i < a.size(); ++i) {
        out.wr(i, a.rd(i) * b.rd(i));
        ctx.emitOps(OpClass::FpMul, 1);
    }
}

} // namespace kernels
} // namespace dmpb
