#include "motifs/bd_motifs.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "base/logging.hh"
#include "datagen/gensort.hh"
#include "datagen/graph.hh"
#include "datagen/text.hh"
#include "datagen/vectors.hh"
#include "motifs/bd_kernels.hh"
#include "motifs/kernel_util.hh"

namespace dmpb {

namespace {

/** Number of whole chunks covering @p total bytes. */
std::size_t
chunkCount(std::uint64_t total, std::uint64_t chunk)
{
    if (chunk == 0)
        chunk = total;
    return static_cast<std::size_t>((total + chunk - 1) /
                                    (chunk ? chunk : 1));
}

/** Load gensort records and extract traced 64-bit key prefixes. */
TracedBuffer<std::uint64_t>
loadKeyPrefixes(TraceContext &ctx,
                const std::vector<GensortRecord> &records,
                const VirtualRange &records_va)
{
    TracedBuffer<std::uint64_t> keys(ctx, records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        ctx.emitLoadAddr(records_va.addr(i,
                                         GensortRecord::kRecordBytes),
                         GensortRecord::kKeyBytes);
        ctx.emitOps(OpClass::IntAlu, 2);  // byte assembly
        keys.wr(i, records[i].keyPrefix());
    }
    return keys;
}

/** Gather pass: move whole records into sorted order (traced). */
std::uint64_t
gatherRecords(TraceContext &ctx, const std::vector<GensortRecord> &in,
              const VirtualRange &in_va,
              const std::vector<std::uint32_t> &order,
              std::vector<GensortRecord> &out)
{
    std::uint64_t checksum = 0;
    out.resize(in.size());
    VirtualRange out_va(ctx,
                        out.size() * GensortRecord::kRecordBytes);
    for (std::size_t i = 0; i < order.size(); ++i) {
        const GensortRecord &r = in[order[i]];
        ctx.emitLoadAddr(in_va.addr(order[i],
                                    GensortRecord::kRecordBytes),
                         GensortRecord::kRecordBytes);
        out[i] = r;
        ctx.emitStoreAddr(out_va.addr(i, GensortRecord::kRecordBytes),
                          GensortRecord::kRecordBytes);
        checksum = checksumMix(checksum, r.keyPrefix());
    }
    return checksum;
}

} // namespace

// ----------------------------------------------------------------- Sort

std::uint64_t
QuickSortMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    const std::size_t per_chunk =
        std::max<std::size_t>(1, p.chunk_size / GensortRecord::kRecordBytes);
    const std::size_t total_records =
        std::max<std::size_t>(2, p.data_size / GensortRecord::kRecordBytes);

    GensortGenerator gen(p.seed);
    std::uint64_t checksum = 0;
    std::size_t done = 0;
    while (done < total_records) {
        std::size_t n = std::min(per_chunk, total_records - done);
        auto records = gen.generate(n);
        VirtualRange records_va(ctx,
                                n * GensortRecord::kRecordBytes);
        auto keys = loadKeyPrefixes(ctx, records, records_va);

        // Sort (key, index) pairs: pack the index into the low bits.
        TracedBuffer<std::uint64_t> tagged(ctx, n);
        for (std::size_t i = 0; i < n; ++i) {
            tagged.wr(i, (keys.rd(i) & ~0xffffffULL) |
                             static_cast<std::uint64_t>(i & 0xffffff));
            ctx.emitOps(OpClass::IntAlu, 2);
        }
        kernels::quickSortU64(ctx, tagged, 0, n - 1);

        std::vector<std::uint32_t> order(n);
        for (std::size_t i = 0; i < n; ++i)
            order[i] = static_cast<std::uint32_t>(tagged.rd(i) &
                                                  0xffffff);
        std::vector<GensortRecord> sorted;
        checksum = checksumMix(
            checksum,
            gatherRecords(ctx, records, records_va, order, sorted));
        done += n;
    }
    return checksum;
}

std::uint64_t
MergeSortMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    const std::size_t per_chunk =
        std::max<std::size_t>(2, p.chunk_size / GensortRecord::kRecordBytes);
    const std::size_t total_records =
        std::max<std::size_t>(2, p.data_size / GensortRecord::kRecordBytes);

    GensortGenerator gen(p.seed);
    std::uint64_t checksum = 0;
    std::size_t done = 0;
    while (done < total_records) {
        std::size_t n = std::min(per_chunk, total_records - done);
        auto records = gen.generate(n);
        VirtualRange records_va(ctx,
                                n * GensortRecord::kRecordBytes);
        auto keys = loadKeyPrefixes(ctx, records, records_va);
        kernels::mergeSortU64(ctx, keys);
        for (std::size_t i = 0; i < n; i += 64)
            checksum = checksumMix(checksum, keys.rd(i));
        done += n;
    }
    return checksum;
}

// ------------------------------------------------------------- Sampling

std::uint64_t
RandomSamplingMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    const std::size_t n = std::max<std::size_t>(16, p.data_size / 8);
    Rng rng(p.seed);
    TracedBuffer<std::uint64_t> in(ctx, n);
    for (std::size_t i = 0; i < n; ++i)
        in.raw()[i] = rng.next();
    TracedBuffer<std::uint64_t> out(ctx, n);
    Rng sample_rng(p.seed ^ 0x5a5aULL);
    std::size_t k = kernels::randomSample(ctx, in, out, 0.1, sample_rng);
    std::uint64_t checksum = k;
    for (std::size_t i = 0; i < k; i += 16)
        checksum = checksumMix(checksum, out.rd(i));
    return checksum;
}

std::uint64_t
IntervalSamplingMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    const std::size_t n = std::max<std::size_t>(16, p.data_size / 8);
    Rng rng(p.seed);
    TracedBuffer<std::uint64_t> in(ctx, n);
    for (std::size_t i = 0; i < n; ++i)
        in.raw()[i] = rng.next();
    TracedBuffer<std::uint64_t> out(ctx, n / 8 + 1);
    std::size_t k = kernels::intervalSample(ctx, in, out, 8);
    std::uint64_t checksum = k;
    for (std::size_t i = 0; i < k; i += 16)
        checksum = checksumMix(checksum, out.rd(i));
    return checksum;
}

// ---------------------------------------------------------------- Graph

std::uint64_t
GraphConstructMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    const std::size_t edges =
        std::max<std::size_t>(64, p.data_size / 8);
    const std::uint64_t vertices = std::max<std::uint64_t>(8, edges / 8);
    Rng rng(p.seed);
    ZipfSampler zipf(vertices, 0.6);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list;
    edge_list.reserve(edges);
    for (std::size_t i = 0; i < edges; ++i) {
        auto src = static_cast<std::uint32_t>(rng.nextU64(vertices));
        auto dst = static_cast<std::uint32_t>(mix64(zipf.sample(rng)) %
                                              vertices);
        edge_list.emplace_back(src, dst);
    }
    Graph g = kernels::graphConstruct(ctx, edge_list, vertices);
    std::uint64_t checksum = g.numEdges();
    for (std::uint64_t v = 0; v < vertices; v += 64)
        checksum = checksumMix(checksum, g.out_offset[v]);
    return checksum;
}

std::uint64_t
GraphTraverseMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    const std::uint64_t vertices =
        std::max<std::uint64_t>(64, p.data_size / 64);
    GraphGenerator gen(p.seed);
    Graph g = gen.generate(vertices, 8.0, 0.6);
    // The generator is untraced; adopt the CSR arrays into this
    // context's simulated address space for the traversal.
    g.out_offset_va = ctx.virtualAlloc(g.out_offset.size() * 8);
    g.out_edges_va = ctx.virtualAlloc(g.out_edges.size() * 4);
    std::vector<std::uint8_t> visited(vertices, 0);
    VirtualRange visited_va(ctx, vertices);
    std::uint64_t reached_total = 0;
    Rng rng(p.seed ^ 0x77ULL);
    // BFS waves from random roots until most of the graph is covered.
    for (int root_trial = 0; root_trial < 8; ++root_trial) {
        auto root = static_cast<std::uint32_t>(rng.nextU64(vertices));
        if (visited[root])
            continue;
        reached_total += kernels::graphBfs(ctx, g, root, visited,
                                           visited_va.base());
    }
    return checksumMix(reached_total, vertices);
}

// ------------------------------------------------------------------ Set

namespace {

std::uint64_t
runSetOp(TraceContext &ctx, const MotifParams &p, int which)
{
    const std::size_t n = std::max<std::size_t>(16, p.data_size / 16);
    TextGenerator ga(p.seed), gb(p.seed ^ 0x1234ULL);
    auto sa = ga.generateIdSet(n, n * 8);
    auto sb = gb.generateIdSet(n, n * 8);
    TracedBuffer<std::uint64_t> a(ctx, std::move(sa));
    TracedBuffer<std::uint64_t> b(ctx, std::move(sb));
    TracedBuffer<std::uint64_t> out(ctx, a.size() + b.size());
    std::size_t k = 0;
    switch (which) {
      case 0: k = kernels::setUnion(ctx, a, b, out); break;
      case 1: k = kernels::setIntersect(ctx, a, b, out); break;
      default: k = kernels::setDifference(ctx, a, b, out); break;
    }
    std::uint64_t checksum = k;
    for (std::size_t i = 0; i < k; i += 32)
        checksum = checksumMix(checksum, out.rd(i));
    return checksum;
}

} // namespace

std::uint64_t
SetUnionMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    return runSetOp(ctx, p, 0);
}

std::uint64_t
SetIntersectionMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    return runSetOp(ctx, p, 1);
}

std::uint64_t
SetDifferenceMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    return runSetOp(ctx, p, 2);
}

// ------------------------------------------------------------ Statistics

std::uint64_t
CountAvgStatsMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    const std::size_t n = std::max<std::size_t>(64, p.data_size / 8);
    const auto vocab = static_cast<std::uint32_t>(
        std::max<std::size_t>(16, n / 64));
    TextGenerator gen(p.seed);
    auto tokens = gen.generateTokens(n, vocab, 0.8);
    TracedBuffer<std::uint32_t> keys(ctx, std::move(tokens));
    TracedBuffer<float> values(ctx, n);
    Rng rng(p.seed ^ 0xabcULL);
    for (std::size_t i = 0; i < n; ++i)
        values.raw()[i] = static_cast<float>(rng.nextDouble(0.0, 100.0));

    std::vector<std::uint32_t> out_keys;
    std::vector<std::uint64_t> out_counts;
    std::vector<double> out_sums;
    std::size_t groups = kernels::hashGroupStats(
        ctx, keys, values, out_keys, out_counts, out_sums);

    // Average computation per group.
    std::uint64_t checksum = groups;
    for (std::size_t g = 0; g < groups; ++g) {
        double avg = out_sums[g] / static_cast<double>(out_counts[g]);
        ctx.emitOps(OpClass::FpMul, 1);
        checksum = checksumMixF(checksum, avg);
    }
    return checksum;
}

std::uint64_t
ProbabilityStatsMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    const std::size_t n = std::max<std::size_t>(64, p.data_size / 4);
    const auto vocab = static_cast<std::uint32_t>(
        std::max<std::size_t>(16, n / 32));
    TextGenerator gen(p.seed);
    auto tokens = gen.generateTokens(n, vocab, 0.8);
    TracedBuffer<std::uint32_t> buf(ctx, std::move(tokens));
    double entropy = kernels::probabilityStats(ctx, buf, vocab);
    return checksumMixF(0, entropy);
}

std::uint64_t
MinMaxMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    const std::size_t n = std::max<std::size_t>(16, p.data_size / 8);
    Rng rng(p.seed);
    TracedBuffer<std::uint64_t> a(ctx, n);
    for (std::size_t i = 0; i < n; ++i)
        a.raw()[i] = rng.next();
    auto [mn, mx] = kernels::minMaxScan(ctx, a);
    return checksumMix(mn, mx);
}

// ---------------------------------------------------------------- Logic

std::uint64_t
Md5Motif::run(TraceContext &ctx, const MotifParams &p) const
{
    const std::size_t n = std::max<std::size_t>(64, p.data_size);
    const std::size_t chunk =
        std::max<std::size_t>(64, p.chunk_size ? p.chunk_size : n);
    Rng rng(p.seed);
    std::uint64_t checksum = 0;
    std::size_t done = 0;
    while (done < n) {
        std::size_t len = std::min(chunk, n - done);
        TracedBuffer<std::uint8_t> data(ctx, len);
        for (std::size_t i = 0; i < len; i += 8) {
            std::uint64_t v = rng.next();
            std::memcpy(data.data() + i,
                        &v, std::min<std::size_t>(8, len - i));
        }
        checksum = checksumMix(checksum, kernels::md5Digest(ctx, data));
        done += len;
    }
    return checksum;
}

std::uint64_t
EncryptionMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    const std::size_t words = std::max<std::size_t>(2, p.data_size / 4);
    Rng rng(p.seed);
    TracedBuffer<std::uint32_t> buf(ctx, words);
    for (auto &w : buf.raw())
        w = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t key[4] = {
        static_cast<std::uint32_t>(rng.next()),
        static_cast<std::uint32_t>(rng.next()),
        static_cast<std::uint32_t>(rng.next()),
        static_cast<std::uint32_t>(rng.next())};
    return kernels::xteaEncrypt(ctx, buf, key);
}

// ------------------------------------------------------------ Transform

std::uint64_t
FftMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    std::size_t n = std::bit_floor(
        std::max<std::size_t>(16, p.data_size / 16));
    Rng rng(p.seed);
    TracedBuffer<double> reim(ctx, 2 * n);
    for (auto &v : reim.raw())
        v = rng.nextDouble(-1.0, 1.0);
    // Forward then inverse (round trip, as FFT/IFFT in Fig. 2).
    kernels::fftRadix2(ctx, reim, n, false);
    kernels::fftRadix2(ctx, reim, n, true);
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < 2 * n; i += 64)
        checksum = checksumMixF(checksum, reim.rd(i));
    return checksum;
}

std::uint64_t
DctMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    std::size_t n = std::max<std::size_t>(64, p.data_size / 4);
    n -= n % 64;
    Rng rng(p.seed);
    TracedBuffer<float> samples(ctx, n);
    for (auto &v : samples.raw())
        v = static_cast<float>(rng.nextDouble(0.0, 255.0));
    kernels::dct8x8Blocks(ctx, samples);
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < n; i += 64)
        checksum = checksumMixF(checksum, samples.rd(i));
    return checksum;
}

// --------------------------------------------------------------- Matrix

std::uint64_t
MatMulMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    // Three square matrices: 3 * d^2 * 4 bytes ~= data_size.
    std::size_t d = 8;
    while ((d + 8) * (d + 8) * 12 <= p.data_size)
        d += 8;
    Rng rng(p.seed);
    TracedBuffer<float> a(ctx, d * d), b(ctx, d * d), c(ctx, d * d);
    for (auto &v : a.raw())
        v = static_cast<float>(rng.nextDouble(-1.0, 1.0));
    for (auto &v : b.raw())
        v = static_cast<float>(rng.nextDouble(-1.0, 1.0));
    kernels::matMul(ctx, a, b, c, d, d, d);
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < d * d; i += 17)
        checksum = checksumMixF(checksum, c.rd(i));
    return checksum;
}

namespace {

VectorDataset
motifVectors(const MotifParams &p, std::size_t dim)
{
    const std::size_t n = std::max<std::size_t>(
        4, p.data_size / (dim * sizeof(float)));
    VectorGenerator gen(p.seed);
    return gen.generate(n, dim, p.sparsity);
}

} // namespace

std::uint64_t
EuclideanDistanceMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    constexpr std::size_t kDim = 64;
    constexpr std::size_t kCentroids = 16;
    VectorDataset ds = motifVectors(p, kDim);
    Rng rng(p.seed ^ 0xc3ULL);
    TracedBuffer<float> centroids(ctx, kCentroids * kDim);
    for (auto &v : centroids.raw())
        v = static_cast<float>(rng.nextDouble(-8.0, 8.0));
    TracedBuffer<std::uint32_t> assign(ctx, ds.num_vectors);

    if (p.sparsity <= 0.0) {
        TracedBuffer<float> points(ctx, std::move(ds.dense));
        double sse = kernels::euclideanAssign(ctx, points,
                                              ds.num_vectors, kDim,
                                              centroids, kCentroids,
                                              assign);
        return checksumMixF(assign.rd(0), sse);
    }

    // Sparse input: honour the data pattern -- CSR traversal with
    // per-centroid partial-sum accumulation, like sparse K-means.
    ds.csr_row_offset_va =
        ctx.virtualAlloc(ds.csr_row_offset.size() * 8);
    ds.csr_col_va = ctx.virtualAlloc(ds.csr_col.size() * 4);
    ds.csr_val_va = ctx.virtualAlloc(ds.csr_val.size() * 4);
    std::vector<double> cent_norm(kCentroids, 0.0);
    for (std::size_t c = 0; c < kCentroids; ++c)
        for (std::size_t d = 0; d < kDim; ++d)
            cent_norm[c] += static_cast<double>(
                                centroids.raw()[c * kDim + d]) *
                            centroids.raw()[c * kDim + d];
    std::vector<double> sums(kCentroids * kDim, 0.0);
    VirtualRange sums_va(ctx, sums.size() * 8);
    double sse = 0.0;
    for (std::size_t i = 0; i < ds.num_vectors; ++i) {
        std::uint64_t b = ds.csr_row_offset[i];
        std::uint64_t e = ds.csr_row_offset[i + 1];
        ctx.emitLoadAddr(ds.csr_row_offset_va + i * 8, 16);
        double best = 1e300;
        std::uint32_t best_c = 0;
        for (std::size_t c = 0; c < kCentroids; ++c) {
            double dot = 0.0, pnorm = 0.0;
            for (std::uint64_t k = b; k < e; ++k) {
                ctx.emitLoadAddr(ds.csr_col_va + k * 4, 4);
                ctx.emitLoadAddr(ds.csr_val_va + k * 4, 4);
                float cv = centroids.rd(c * kDim + ds.csr_col[k]);
                dot += static_cast<double>(ds.csr_val[k]) * cv;
                pnorm += static_cast<double>(ds.csr_val[k]) *
                         ds.csr_val[k];
                ctx.emitOps(OpClass::FpMul, 2);
                ctx.emitOps(OpClass::FpAlu, 2);
            }
            double dist = pnorm - 2.0 * dot + cent_norm[c];
            ctx.emitOps(OpClass::FpAlu, 3);
            bool better = dist < best;
            DMPB_BR(ctx, better);
            if (better) {
                best = dist;
                best_c = static_cast<std::uint32_t>(c);
            }
        }
        for (std::uint64_t k = b; k < e; ++k) {
            std::size_t s = best_c * kDim + ds.csr_col[k];
            ctx.emitLoadAddr(sums_va.addr(s), 8);
            sums[s] += ds.csr_val[k];
            ctx.emitStoreAddr(sums_va.addr(s), 8);
            ctx.emitOps(OpClass::FpAlu, 1);
        }
        assign.wr(i, best_c);
        sse += best;
    }
    return checksumMixF(assign.rd(0), sse);
}

std::uint64_t
CosineDistanceMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    constexpr std::size_t kDim = 64;
    VectorDataset ds = motifVectors(p, kDim);
    if (ds.num_vectors < 2)
        return 0;
    TracedBuffer<float> rows(ctx, std::move(ds.dense));
    double sim = kernels::cosineSimilarity(ctx, rows, ds.num_vectors,
                                           kDim);
    return checksumMixF(0, sim);
}

} // namespace dmpb
