/**
 * @file
 * Instrumented AI computation kernels (Fig. 2, right).
 *
 * These are the layer-level units of computation shared by the AI
 * motifs and by the tensorlite network executor: convolution, pooling,
 * fully-connected, activations, normalisations and reductions. All of
 * them honour the Section II-A shape vocabulary: batch size, height,
 * width, channel count, filter shape, stride, padding and the
 * NCHW/NHWC storage formats of TensorFlow.
 *
 * Real arithmetic is performed (unit tests check numerics); every
 * element access and every flop is reported to the TraceContext.
 * Transcendental functions (exp/tanh/sqrt) are charged a fixed
 * polynomial-evaluation cost of 2 FpMul + 4 FpAlu.
 */

#ifndef DMPB_MOTIFS_AI_KERNELS_HH
#define DMPB_MOTIFS_AI_KERNELS_HH

#include <cstdint>

#include "base/rng.hh"
#include "datagen/images.hh"
#include "sim/traced_buffer.hh"

namespace dmpb {

/** Dense 4-D tensor shape (batch, channels, height, width). */
struct Shape4
{
    std::uint32_t n = 1;
    std::uint32_t c = 1;
    std::uint32_t h = 1;
    std::uint32_t w = 1;

    std::size_t elems() const
    {
        return static_cast<std::size_t>(n) * c * h * w;
    }

    /** Flat index honouring the storage layout. */
    std::size_t
    index(DataLayout layout, std::uint32_t in, std::uint32_t ic,
          std::uint32_t iy, std::uint32_t ix) const
    {
        if (layout == DataLayout::NCHW) {
            return ((static_cast<std::size_t>(in) * c + ic) * h + iy) *
                       w + ix;
        }
        return ((static_cast<std::size_t>(in) * h + iy) * w + ix) * c +
               ic;
    }

    bool operator==(const Shape4 &o) const = default;
};

namespace kernels {

/** Output spatial size of a conv/pool window sweep. */
std::uint32_t convOutDim(std::uint32_t in, std::uint32_t kernel,
                         std::uint32_t stride, std::uint32_t pad);

/**
 * Direct 2-D convolution.
 *
 * @param in       Input activations with shape @p ishape.
 * @param weights  Filters, OIHW order: [filters][ishape.c][k][k].
 * @param bias     One value per output channel (may be empty).
 * @param out      Output buffer, shape (ishape.n, filters, oh, ow).
 * @return the output shape.
 */
Shape4 conv2d(TraceContext &ctx, const TracedBuffer<float> &in,
              const Shape4 &ishape, const TracedBuffer<float> &weights,
              const TracedBuffer<float> &bias, TracedBuffer<float> &out,
              std::uint32_t filters, std::uint32_t kernel,
              std::uint32_t stride, std::uint32_t pad,
              DataLayout layout = DataLayout::NCHW);

/** Max pooling over k x k windows. @return output shape. */
Shape4 maxPool2d(TraceContext &ctx, const TracedBuffer<float> &in,
                 const Shape4 &ishape, TracedBuffer<float> &out,
                 std::uint32_t kernel, std::uint32_t stride,
                 DataLayout layout = DataLayout::NCHW);

/** Average pooling over k x k windows. @return output shape. */
Shape4 avgPool2d(TraceContext &ctx, const TracedBuffer<float> &in,
                 const Shape4 &ishape, TracedBuffer<float> &out,
                 std::uint32_t kernel, std::uint32_t stride,
                 DataLayout layout = DataLayout::NCHW);

/** Fully-connected layer: out[b][o] = sum_i in[b][i]*w[o][i] + bias. */
void fullyConnected(TraceContext &ctx, const TracedBuffer<float> &in,
                    std::size_t batch, std::size_t in_dim,
                    const TracedBuffer<float> &weights,
                    const TracedBuffer<float> &bias,
                    TracedBuffer<float> &out, std::size_t out_dim);

/** In-place ReLU (Logic motif in Fig. 2). */
void relu(TraceContext &ctx, TracedBuffer<float> &x);

/** In-place logistic sigmoid. */
void sigmoid(TraceContext &ctx, TracedBuffer<float> &x);

/** In-place tanh. */
void tanhAct(TraceContext &ctx, TracedBuffer<float> &x);

/** Row-wise softmax over @p rows rows of @p dim values, in place. */
void softmax(TraceContext &ctx, TracedBuffer<float> &x, std::size_t rows,
             std::size_t dim);

/** Inverted dropout in place; returns number of kept elements. */
std::size_t dropout(TraceContext &ctx, TracedBuffer<float> &x,
                    double drop_rate, Rng &rng);

/**
 * Batch normalisation over (n, h, w) per channel, in place,
 * with learned gamma/beta (may be empty for identity affine).
 */
void batchNorm(TraceContext &ctx, TracedBuffer<float> &x,
               const Shape4 &shape, const TracedBuffer<float> &gamma,
               const TracedBuffer<float> &beta, float epsilon = 1e-5f,
               DataLayout layout = DataLayout::NCHW);

/** Row-wise L2 (cosine) normalisation in place. */
void cosineNorm(TraceContext &ctx, TracedBuffer<float> &x,
                std::size_t rows, std::size_t dim);

/** Sum of all elements (Statistics / reduce-sum in Fig. 2). */
double reduceSum(TraceContext &ctx, const TracedBuffer<float> &x);

/** Maximum element (Sort / reduce-max in Fig. 2). */
float reduceMax(TraceContext &ctx, const TracedBuffer<float> &x);

/** Element-wise product: out = a .* b. */
void elementWiseMul(TraceContext &ctx, const TracedBuffer<float> &a,
                    const TracedBuffer<float> &b,
                    TracedBuffer<float> &out);

} // namespace kernels
} // namespace dmpb

#endif // DMPB_MOTIFS_AI_KERNELS_HH
