/**
 * @file
 * Big-data motif implementations (Fig. 2, left half).
 *
 * Every class generates its own input data (type, pattern and
 * distribution are parameterised, per Section II-A), processes it in
 * chunk_size blocks -- the paper's "chunk data allocation per thread"
 * -- and runs the corresponding instrumented kernel(s).
 */

#ifndef DMPB_MOTIFS_BD_MOTIFS_HH
#define DMPB_MOTIFS_BD_MOTIFS_HH

#include "motifs/motif.hh"

namespace dmpb {

/** Declare a concrete motif class with the standard interface. */
#define DMPB_DECLARE_MOTIF(ClassName, motif_name, motif_class, is_ai)     \
    class ClassName : public Motif                                        \
    {                                                                     \
      public:                                                             \
        std::string name() const override { return motif_name; }         \
        MotifClass motifClass() const override                            \
        {                                                                 \
            return MotifClass::motif_class;                               \
        }                                                                 \
        bool isAi() const override { return is_ai; }                     \
        std::uint64_t run(TraceContext &ctx,                              \
                          const MotifParams &p) const override;           \
    }

/** @{ Sort motif: quick sort and merge sort over gensort records. */
DMPB_DECLARE_MOTIF(QuickSortMotif, "quick_sort", Sort, false);
DMPB_DECLARE_MOTIF(MergeSortMotif, "merge_sort", Sort, false);
/** @} */

/** @{ Sampling motif: Bernoulli and strided selection. */
DMPB_DECLARE_MOTIF(RandomSamplingMotif, "random_sampling", Sampling,
                   false);
DMPB_DECLARE_MOTIF(IntervalSamplingMotif, "interval_sampling", Sampling,
                   false);
/** @} */

/** @{ Graph motif: CSR construction and BFS traversal. */
DMPB_DECLARE_MOTIF(GraphConstructMotif, "graph_construct", Graph, false);
DMPB_DECLARE_MOTIF(GraphTraverseMotif, "graph_traverse", Graph, false);
/** @} */

/** @{ Set motif (relational-algebra primitives). */
DMPB_DECLARE_MOTIF(SetUnionMotif, "set_union", Set, false);
DMPB_DECLARE_MOTIF(SetIntersectionMotif, "set_intersection", Set, false);
DMPB_DECLARE_MOTIF(SetDifferenceMotif, "set_difference", Set, false);
/** @} */

/** @{ Statistics motif. */
DMPB_DECLARE_MOTIF(CountAvgStatsMotif, "count_avg_stats", Statistics,
                   false);
DMPB_DECLARE_MOTIF(ProbabilityStatsMotif, "probability_stats", Statistics,
                   false);
DMPB_DECLARE_MOTIF(MinMaxMotif, "min_max", Statistics, false);
/** @} */

/** @{ Logic motif: MD5 hashing and XTEA encryption. */
DMPB_DECLARE_MOTIF(Md5Motif, "md5_hash", Logic, false);
DMPB_DECLARE_MOTIF(EncryptionMotif, "encryption", Logic, false);
/** @} */

/** @{ Transform motif: FFT/IFFT round trip and 8x8 DCT. */
DMPB_DECLARE_MOTIF(FftMotif, "fft", Transform, false);
DMPB_DECLARE_MOTIF(DctMotif, "dct", Transform, false);
/** @} */

/** @{ Matrix motif: dense multiply and distance computations. */
DMPB_DECLARE_MOTIF(MatMulMotif, "matrix_multiply", Matrix, false);
DMPB_DECLARE_MOTIF(EuclideanDistanceMotif, "euclidean_distance", Matrix,
                   false);
DMPB_DECLARE_MOTIF(CosineDistanceMotif, "cosine_distance", Matrix, false);
/** @} */

} // namespace dmpb

#endif // DMPB_MOTIFS_BD_MOTIFS_HH
