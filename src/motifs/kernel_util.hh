/**
 * @file
 * Helpers shared by the instrumented kernels.
 */

#ifndef DMPB_MOTIFS_KERNEL_UTIL_HH
#define DMPB_MOTIFS_KERNEL_UTIL_HH

#include <cstdint>

#include "base/rng.hh"
#include "sim/trace.hh"

/**
 * Emit a conditional branch with a unique per-call-site id.
 *
 * The id is derived from the address of a function-local static, so
 * each textual occurrence is a distinct "static branch" for the
 * predictor, like a distinct PC in real code.
 */
#define DMPB_BR(ctx, taken)                                               \
    do {                                                                  \
        static const int _dmpb_site_anchor = 0;                           \
        (ctx).emitBranch(::dmpb::mix64(reinterpret_cast<std::uint64_t>(   \
                             &_dmpb_site_anchor)),                        \
                         (taken));                                        \
    } while (0)

namespace dmpb {

/** Mix a value into a running checksum. */
inline std::uint64_t
checksumMix(std::uint64_t acc, std::uint64_t v)
{
    return mix64(acc ^ (v + 0x9e3779b97f4a7c15ULL));
}

/** Mix a double bit-pattern into a running checksum. */
inline std::uint64_t
checksumMixF(std::uint64_t acc, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return checksumMix(acc, bits);
}

} // namespace dmpb

#endif // DMPB_MOTIFS_KERNEL_UTIL_HH
