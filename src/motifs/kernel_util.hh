/**
 * @file
 * Helpers shared by the instrumented kernels.
 */

#ifndef DMPB_MOTIFS_KERNEL_UTIL_HH
#define DMPB_MOTIFS_KERNEL_UTIL_HH

#include <cstdint>

#include "base/rng.hh"
#include "sim/trace.hh"

namespace dmpb {

/** Compile-time FNV-1a hash of a branch site (file + line), so each
 *  textual occurrence is a distinct "static branch" for the predictor
 *  -- like a distinct PC in real code, but independent of where the
 *  loader maps the binary (a static's address would shift with ASLR
 *  and make predictor aliasing, and thus the misprediction ratio,
 *  vary from run to run). */
constexpr std::uint64_t
branchSiteHash(const char *file, unsigned line)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char *p = file; *p != '\0'; ++p)
        h = (h ^ static_cast<std::uint64_t>(
                     static_cast<unsigned char>(*p))) *
            0x100000001b3ULL;
    h = (h ^ line) * 0x100000001b3ULL;
    return h;
}

} // namespace dmpb

/** Emit a conditional branch with a unique, deterministic
 *  per-call-site id. */
#define DMPB_BR(ctx, taken)                                               \
    do {                                                                  \
        constexpr std::uint64_t _dmpb_site =                              \
            ::dmpb::branchSiteHash(__FILE__, __LINE__);                   \
        (ctx).emitBranch(_dmpb_site, (taken));                            \
    } while (0)

namespace dmpb {

/** Mix a value into a running checksum. */
inline std::uint64_t
checksumMix(std::uint64_t acc, std::uint64_t v)
{
    return mix64(acc ^ (v + 0x9e3779b97f4a7c15ULL));
}

/** Mix a double bit-pattern into a running checksum. */
inline std::uint64_t
checksumMixF(std::uint64_t acc, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return checksumMix(acc, bits);
}

} // namespace dmpb

#endif // DMPB_MOTIFS_KERNEL_UTIL_HH
