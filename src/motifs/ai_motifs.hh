/**
 * @file
 * AI motif implementations (Fig. 2, right half).
 *
 * Shapes follow Section II-A: batch size, height/width, channel count,
 * filter shape, stride and the NCHW/NHWC storage formats. total_size
 * (Table I) is the number of input samples to process; iterations of
 * batch_size samples run until it is covered.
 */

#ifndef DMPB_MOTIFS_AI_MOTIFS_HH
#define DMPB_MOTIFS_AI_MOTIFS_HH

#include "motifs/motif.hh"

namespace dmpb {

#define DMPB_DECLARE_AI_MOTIF(ClassName, motif_name, motif_class)        \
    class ClassName : public Motif                                        \
    {                                                                     \
      public:                                                             \
        std::string name() const override { return motif_name; }         \
        MotifClass motifClass() const override                            \
        {                                                                 \
            return MotifClass::motif_class;                               \
        }                                                                 \
        bool isAi() const override { return true; }                      \
        std::uint64_t run(TraceContext &ctx,                              \
                          const MotifParams &p) const override;           \
    }

/** @{ Matrix class (Fig. 2): fully connected, element-wise,
 *     sigmoid/tanh/softmax. */
DMPB_DECLARE_AI_MOTIF(FullyConnectedMotif, "fully_connected", Matrix);
DMPB_DECLARE_AI_MOTIF(ElementMulMotif, "element_mul", Matrix);
DMPB_DECLARE_AI_MOTIF(SigmoidMotif, "sigmoid", Matrix);
DMPB_DECLARE_AI_MOTIF(TanhMotif, "tanh", Matrix);
DMPB_DECLARE_AI_MOTIF(SoftmaxMotif, "softmax", Matrix);
/** @} */

/** @{ Sampling class: pooling. */
DMPB_DECLARE_AI_MOTIF(MaxPoolMotif, "max_pool", Sampling);
DMPB_DECLARE_AI_MOTIF(AvgPoolMotif, "avg_pool", Sampling);
/** @} */

/** @{ Transform class: convolution. */
DMPB_DECLARE_AI_MOTIF(ConvolutionMotif, "convolution", Transform);
/** @} */

/** @{ Statistics class: dropout, batch norm, cosine norm, reduce sum. */
DMPB_DECLARE_AI_MOTIF(DropoutMotif, "dropout", Statistics);
DMPB_DECLARE_AI_MOTIF(BatchNormMotif, "batch_norm", Statistics);
DMPB_DECLARE_AI_MOTIF(CosineNormMotif, "cosine_norm", Statistics);
DMPB_DECLARE_AI_MOTIF(ReduceSumMotif, "reduce_sum", Statistics);
/** @} */

/** @{ Logic class: ReLU. */
DMPB_DECLARE_AI_MOTIF(ReluMotif, "relu", Logic);
/** @} */

/** @{ Sort class: reduce max. */
DMPB_DECLARE_AI_MOTIF(ReduceMaxMotif, "reduce_max", Sort);
/** @} */

} // namespace dmpb

#endif // DMPB_MOTIFS_AI_MOTIFS_HH
