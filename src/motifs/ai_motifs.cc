#include "motifs/ai_motifs.hh"

#include <algorithm>

#include "base/logging.hh"
#include "motifs/ai_kernels.hh"
#include "motifs/kernel_util.hh"

namespace dmpb {

namespace {

/** Batch-input shape from the motif parameters. */
Shape4
inputShape(const MotifParams &p)
{
    return Shape4{std::max<std::uint32_t>(1, p.batch_size),
                  std::max<std::uint32_t>(1, p.channels),
                  std::max<std::uint32_t>(1, p.height),
                  std::max<std::uint32_t>(1, p.width)};
}

/** Iterations needed to cover total_size samples (>= 1). */
std::size_t
iterationCount(const MotifParams &p)
{
    if (p.total_size == 0)
        return 1;
    std::uint64_t batch = std::max<std::uint32_t>(1, p.batch_size);
    return static_cast<std::size_t>((p.total_size + batch - 1) / batch);
}

/** Fill a buffer with deterministic activations. */
void
fillUniform(TracedBuffer<float> &buf, Rng &rng, double lo = -1.0,
            double hi = 1.0)
{
    for (auto &v : buf.raw())
        v = static_cast<float>(rng.nextDouble(lo, hi));
}

std::uint64_t
checksumBuffer(const TracedBuffer<float> &buf)
{
    std::uint64_t cs = buf.size();
    for (std::size_t i = 0; i < buf.size();
         i += std::max<std::size_t>(1, buf.size() / 64)) {
        cs = checksumMixF(cs, buf.raw()[i]);
    }
    return cs;
}

} // namespace

std::uint64_t
FullyConnectedMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    Shape4 s = inputShape(p);
    const std::size_t in_dim =
        static_cast<std::size_t>(s.c) * s.h * s.w;
    const std::size_t out_dim = std::max<std::uint32_t>(1, p.filters);
    Rng rng(p.seed);
    TracedBuffer<float> x(ctx, s.n * in_dim);
    TracedBuffer<float> w(ctx, out_dim * in_dim);
    TracedBuffer<float> bias(ctx, out_dim);
    TracedBuffer<float> y(ctx, s.n * out_dim);
    fillUniform(w, rng);
    fillUniform(bias, rng);

    std::uint64_t checksum = 0;
    for (std::size_t it = 0; it < iterationCount(p); ++it) {
        fillUniform(x, rng);
        kernels::fullyConnected(ctx, x, s.n, in_dim, w, bias, y,
                                out_dim);
        checksum = checksumMix(checksum, checksumBuffer(y));
    }
    return checksum;
}

std::uint64_t
ElementMulMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    Shape4 s = inputShape(p);
    Rng rng(p.seed);
    TracedBuffer<float> a(ctx, s.elems());
    TracedBuffer<float> b(ctx, s.elems());
    TracedBuffer<float> out(ctx, s.elems());
    fillUniform(b, rng);
    std::uint64_t checksum = 0;
    for (std::size_t it = 0; it < iterationCount(p); ++it) {
        fillUniform(a, rng);
        kernels::elementWiseMul(ctx, a, b, out);
        checksum = checksumMix(checksum, checksumBuffer(out));
    }
    return checksum;
}

namespace {

/** Shared driver for the in-place activation motifs. */
template <typename Fn>
std::uint64_t
runActivation(TraceContext &ctx, const MotifParams &p, Fn &&activation)
{
    Shape4 s = inputShape(p);
    Rng rng(p.seed);
    TracedBuffer<float> x(ctx, s.elems());
    std::uint64_t checksum = 0;
    for (std::size_t it = 0; it < iterationCount(p); ++it) {
        fillUniform(x, rng, -4.0, 4.0);
        activation(x);
        checksum = checksumMix(checksum, checksumBuffer(x));
    }
    return checksum;
}

} // namespace

std::uint64_t
SigmoidMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    return runActivation(ctx, p, [&](TracedBuffer<float> &x) {
        kernels::sigmoid(ctx, x);
    });
}

std::uint64_t
TanhMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    return runActivation(ctx, p, [&](TracedBuffer<float> &x) {
        kernels::tanhAct(ctx, x);
    });
}

std::uint64_t
ReluMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    return runActivation(ctx, p, [&](TracedBuffer<float> &x) {
        kernels::relu(ctx, x);
    });
}

std::uint64_t
SoftmaxMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    Shape4 s = inputShape(p);
    const std::size_t dim = static_cast<std::size_t>(s.c) * s.h * s.w;
    return runActivation(ctx, p, [&](TracedBuffer<float> &x) {
        kernels::softmax(ctx, x, s.n, dim);
    });
}

namespace {

std::uint64_t
runPool(TraceContext &ctx, const MotifParams &p, bool is_max)
{
    Shape4 s = inputShape(p);
    std::uint32_t kernel = std::max<std::uint32_t>(2, p.kernel);
    std::uint32_t stride = std::max<std::uint32_t>(2, p.stride);
    // Shrink the window if the input is tiny.
    kernel = std::min({kernel, s.h, s.w});
    Rng rng(p.seed);
    TracedBuffer<float> in(ctx, s.elems());
    TracedBuffer<float> out(ctx, s.elems());
    std::uint64_t checksum = 0;
    for (std::size_t it = 0; it < iterationCount(p); ++it) {
        fillUniform(in, rng, 0.0, 1.0);
        if (is_max) {
            kernels::maxPool2d(ctx, in, s, out, kernel, stride,
                               p.layout);
        } else {
            kernels::avgPool2d(ctx, in, s, out, kernel, stride,
                               p.layout);
        }
        checksum = checksumMix(checksum, checksumBuffer(out));
    }
    return checksum;
}

} // namespace

std::uint64_t
MaxPoolMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    return runPool(ctx, p, true);
}

std::uint64_t
AvgPoolMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    return runPool(ctx, p, false);
}

std::uint64_t
ConvolutionMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    Shape4 s = inputShape(p);
    std::uint32_t filters = std::max<std::uint32_t>(1, p.filters);
    std::uint32_t kernel =
        std::min({std::max<std::uint32_t>(1, p.kernel), s.h, s.w});
    std::uint32_t stride = std::max<std::uint32_t>(1, p.stride);
    std::uint32_t pad = kernel / 2;

    Rng rng(p.seed);
    TracedBuffer<float> in(ctx, s.elems());
    TracedBuffer<float> w(
        ctx, static_cast<std::size_t>(filters) * s.c * kernel * kernel);
    TracedBuffer<float> bias(ctx, filters);
    fillUniform(w, rng, -0.5, 0.5);
    fillUniform(bias, rng, -0.1, 0.1);
    Shape4 oshape{s.n, filters,
                  kernels::convOutDim(s.h, kernel, stride, pad),
                  kernels::convOutDim(s.w, kernel, stride, pad)};
    TracedBuffer<float> out(ctx, oshape.elems());

    std::uint64_t checksum = 0;
    for (std::size_t it = 0; it < iterationCount(p); ++it) {
        fillUniform(in, rng, 0.0, 1.0);
        kernels::conv2d(ctx, in, s, w, bias, out, filters, kernel,
                        stride, pad, p.layout);
        checksum = checksumMix(checksum, checksumBuffer(out));
    }
    return checksum;
}

std::uint64_t
DropoutMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    Shape4 s = inputShape(p);
    Rng rng(p.seed);
    Rng mask_rng(p.seed ^ 0xd0d0ULL);
    TracedBuffer<float> x(ctx, s.elems());
    std::uint64_t checksum = 0;
    for (std::size_t it = 0; it < iterationCount(p); ++it) {
        fillUniform(x, rng);
        std::size_t kept = kernels::dropout(ctx, x, 0.5, mask_rng);
        checksum = checksumMix(checksum, kept);
    }
    return checksum;
}

std::uint64_t
BatchNormMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    Shape4 s = inputShape(p);
    Rng rng(p.seed);
    TracedBuffer<float> x(ctx, s.elems());
    TracedBuffer<float> gamma(ctx, s.c);
    TracedBuffer<float> beta(ctx, s.c);
    fillUniform(gamma, rng, 0.5, 1.5);
    fillUniform(beta, rng, -0.5, 0.5);
    std::uint64_t checksum = 0;
    for (std::size_t it = 0; it < iterationCount(p); ++it) {
        fillUniform(x, rng, -2.0, 2.0);
        kernels::batchNorm(ctx, x, s, gamma, beta, 1e-5f, p.layout);
        checksum = checksumMix(checksum, checksumBuffer(x));
    }
    return checksum;
}

std::uint64_t
CosineNormMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    Shape4 s = inputShape(p);
    const std::size_t dim = static_cast<std::size_t>(s.c) * s.h * s.w;
    Rng rng(p.seed);
    TracedBuffer<float> x(ctx, s.elems());
    std::uint64_t checksum = 0;
    for (std::size_t it = 0; it < iterationCount(p); ++it) {
        fillUniform(x, rng);
        kernels::cosineNorm(ctx, x, s.n, dim);
        checksum = checksumMix(checksum, checksumBuffer(x));
    }
    return checksum;
}

std::uint64_t
ReduceSumMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    Shape4 s = inputShape(p);
    Rng rng(p.seed);
    TracedBuffer<float> x(ctx, s.elems());
    std::uint64_t checksum = 0;
    for (std::size_t it = 0; it < iterationCount(p); ++it) {
        fillUniform(x, rng);
        checksum = checksumMixF(checksum, kernels::reduceSum(ctx, x));
    }
    return checksum;
}

std::uint64_t
ReduceMaxMotif::run(TraceContext &ctx, const MotifParams &p) const
{
    Shape4 s = inputShape(p);
    Rng rng(p.seed);
    TracedBuffer<float> x(ctx, s.elems());
    std::uint64_t checksum = 0;
    for (std::size_t it = 0; it < iterationCount(p); ++it) {
        fillUniform(x, rng);
        checksum = checksumMixF(checksum,
                                static_cast<double>(
                                    kernels::reduceMax(ctx, x)));
    }
    return checksum;
}

} // namespace dmpb
