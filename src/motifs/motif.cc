#include "motifs/motif.hh"

#include "motifs/ai_motifs.hh"
#include "motifs/bd_motifs.hh"

namespace dmpb {

const char *
motifClassName(MotifClass c)
{
    switch (c) {
      case MotifClass::Matrix: return "Matrix";
      case MotifClass::Sampling: return "Sampling";
      case MotifClass::Transform: return "Transform";
      case MotifClass::Graph: return "Graph";
      case MotifClass::Logic: return "Logic";
      case MotifClass::Set: return "Set";
      case MotifClass::Sort: return "Sort";
      case MotifClass::Statistics: return "Statistics";
      default: return "Invalid";
    }
}

const std::vector<const Motif *> &
motifRegistry()
{
    // Static singletons: motifs are stateless (all state lives in the
    // TraceContext and the per-run generated data).
    static const QuickSortMotif quick_sort;
    static const MergeSortMotif merge_sort;
    static const RandomSamplingMotif random_sampling;
    static const IntervalSamplingMotif interval_sampling;
    static const GraphConstructMotif graph_construct;
    static const GraphTraverseMotif graph_traverse;
    static const SetUnionMotif set_union;
    static const SetIntersectionMotif set_intersection;
    static const SetDifferenceMotif set_difference;
    static const CountAvgStatsMotif count_avg_stats;
    static const ProbabilityStatsMotif probability_stats;
    static const MinMaxMotif min_max;
    static const Md5Motif md5_hash;
    static const EncryptionMotif encryption;
    static const FftMotif fft;
    static const DctMotif dct;
    static const MatMulMotif matrix_multiply;
    static const EuclideanDistanceMotif euclidean_distance;
    static const CosineDistanceMotif cosine_distance;

    static const FullyConnectedMotif fully_connected;
    static const ElementMulMotif element_mul;
    static const SigmoidMotif sigmoid;
    static const TanhMotif tanh_motif;
    static const SoftmaxMotif softmax;
    static const MaxPoolMotif max_pool;
    static const AvgPoolMotif avg_pool;
    static const ConvolutionMotif convolution;
    static const DropoutMotif dropout;
    static const BatchNormMotif batch_norm;
    static const CosineNormMotif cosine_norm;
    static const ReduceSumMotif reduce_sum;
    static const ReduceMaxMotif reduce_max;
    static const ReluMotif relu;

    static const std::vector<const Motif *> registry = {
        &quick_sort, &merge_sort, &random_sampling, &interval_sampling,
        &graph_construct, &graph_traverse, &set_union,
        &set_intersection, &set_difference, &count_avg_stats,
        &probability_stats, &min_max, &md5_hash, &encryption, &fft,
        &dct, &matrix_multiply, &euclidean_distance, &cosine_distance,
        &fully_connected, &element_mul, &sigmoid, &tanh_motif, &softmax,
        &max_pool, &avg_pool, &convolution, &dropout, &batch_norm,
        &cosine_norm, &reduce_sum, &reduce_max, &relu,
    };
    return registry;
}

const Motif *
findMotif(const std::string &name)
{
    for (const Motif *m : motifRegistry()) {
        if (m->name() == name)
            return m;
    }
    return nullptr;
}

} // namespace dmpb
