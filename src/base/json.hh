/**
 * @file
 * Minimal dependency-free JSON support, shared by every producer and
 * consumer of JSON in the repo:
 *
 *  - JsonWriter: the streaming emitter behind the suite report, the
 *    per-outcome serializer (runner/report writeOutcomeJson) and the
 *    serve daemon's responses. One implementation of RFC 8259 string
 *    escaping, tested once in tests/test_json.cc.
 *  - JsonValue: a strict recursive-descent parser for the daemon's
 *    newline-delimited request protocol and the loadgen's response
 *    handling. Parses one complete document per call; anything
 *    malformed is rejected with a diagnostic instead of a guess.
 */

#ifndef DMPB_BASE_JSON_HH
#define DMPB_BASE_JSON_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dmpb {

/** Streaming JSON emitter: handles nesting, commas and escaping. */
class JsonWriter
{
  public:
    JsonWriter()
    {
        os_.precision(std::numeric_limits<double>::max_digits10);
    }

    void openObject() { element(); os_ << "{"; push(); }
    void openObject(const std::string &k) { key(k); os_ << "{"; push(); }
    void closeObject() { pop(); os_ << "}"; }
    void openArray() { element(); os_ << "["; push(); }
    void openArray(const std::string &k) { key(k); os_ << "["; push(); }
    void closeArray() { pop(); os_ << "]"; }

    void
    field(const std::string &k, const std::string &v)
    {
        key(k);
        string(v);
    }

    void
    field(const std::string &k, const char *v)
    {
        field(k, std::string(v));
    }

    void
    field(const std::string &k, double v)
    {
        key(k);
        number(v);
    }

    void
    field(const std::string &k, std::uint64_t v)
    {
        key(k);
        os_ << v;
    }

    void
    field(const std::string &k, bool v)
    {
        key(k);
        os_ << (v ? "true" : "false");
    }

    /** Array-element emitters (no key). */
    void element(const std::string &v) { element(); string(v); }
    void element(double v) { element(); number(v); }

    /**
     * Splice @p json -- a complete, already-serialized JSON value --
     * in as the value of @p k. This is how a pre-rendered outcome
     * object (writeOutcomeJson) embeds into a response envelope
     * without re-serializing: the bytes land verbatim.
     */
    void
    rawField(const std::string &k, const std::string &json)
    {
        key(k);
        os_ << json;
    }

    /** Splice @p json in as one array element, verbatim. */
    void
    rawElement(const std::string &json)
    {
        element();
        os_ << json;
    }

    std::string str() const { return os_.str(); }

  private:
    void
    element()
    {
        if (!first_.empty() && !first_.back())
            os_ << ",";
        if (!first_.empty())
            first_.back() = false;
    }

    void
    key(const std::string &k)
    {
        element();
        string(k);
        os_ << ":";
    }

    void number(double v);
    void string(const std::string &s);

    void push() { first_.push_back(true); }
    void pop() { first_.pop_back(); }

    std::ostringstream os_;
    std::vector<bool> first_;
};

/** RFC 8259-escape @p s (without the surrounding quotes). */
std::string jsonEscape(const std::string &s);

/**
 * One parsed JSON value. Object members keep their document order;
 * duplicate keys resolve to the first occurrence (find()).
 */
class JsonValue
{
  public:
    enum class Type : std::uint8_t
    {
        Null = 0,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /**
     * Parse @p text as exactly one JSON document (leading/trailing
     * whitespace allowed, nothing else). On failure returns false and
     * fills @p error (when non-null) with a position-stamped
     * diagnostic. Nesting is capped at 32 levels so a hostile request
     * cannot overflow the stack.
     */
    static bool parse(std::string_view text, JsonValue &out,
                      std::string *error = nullptr);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isString() const { return type_ == Type::String; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isArray() const { return type_ == Type::Array; }

    /** Value accessors; the fallback is returned on type mismatch. */
    bool asBool(bool fallback = false) const;
    double asNumber(double fallback = 0.0) const;
    std::uint64_t asU64(std::uint64_t fallback = 0) const;
    const std::string &asString() const;

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Array elements / object members (empty for scalar types). */
    const std::vector<JsonValue> &items() const { return items_; }
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

  private:
    friend class JsonParser;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace dmpb

#endif // DMPB_BASE_JSON_HH
