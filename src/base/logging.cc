#include "base/logging.hh"

#include <atomic>
#include <cstdio>

namespace dmpb {

namespace {
std::atomic<bool> logging_enabled{true};
} // namespace

void
setLoggingEnabled(bool enabled)
{
    logging_enabled.store(enabled, std::memory_order_relaxed);
}

bool
loggingEnabled()
{
    return logging_enabled.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (loggingEnabled()) {
        std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
    }
}

void
informImpl(const std::string &msg)
{
    if (loggingEnabled()) {
        std::fprintf(stderr, "info: %s\n", msg.c_str());
    }
}

} // namespace detail
} // namespace dmpb
