#include "base/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dmpb {

void
TextTable::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
TextTable::row(std::vector<std::string> cols)
{
    rows_.push_back(std::move(cols));
}

std::string
TextTable::render() const
{
    std::size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<std::size_t> width(ncols, 0);
    auto account = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    account(header_);
    for (const auto &r : rows_)
        account(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < ncols; ++i) {
            std::string cell = i < r.size() ? r[i] : "";
            os << cell << std::string(width[i] - cell.size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : width)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace dmpb
