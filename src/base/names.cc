#include "base/names.hh"

#include <cctype>

namespace dmpb {

std::string
shortName(const std::string &name)
{
    std::size_t space = name.rfind(' ');
    return space == std::string::npos ? name : name.substr(space + 1);
}

std::string
canonName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

std::string
sanitizeFileStem(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c : '_');
    }
    return out;
}

std::uint64_t
mixSeed(std::uint64_t seed, std::string_view salt)
{
    std::uint64_t z = seed;
    for (char c : salt)
        z = (z ^ static_cast<std::uint64_t>(
                 static_cast<unsigned char>(c))) * 0x100000001b3ULL;
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace dmpb
