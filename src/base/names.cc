#include "base/names.hh"

#include <cctype>

namespace dmpb {

std::string
shortName(const std::string &name)
{
    std::size_t space = name.rfind(' ');
    return space == std::string::npos ? name : name.substr(space + 1);
}

std::string
canonName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

std::string
sanitizeFileStem(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c : '_');
    }
    return out;
}

} // namespace dmpb
