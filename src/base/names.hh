/**
 * @file
 * Shared name-handling helpers.
 *
 * Three subsystems (the suite runner's workload selection, the bench
 * harnesses and the on-disk caches) historically carried private
 * copies of the same small string utilities; they live here once so
 * short names, canonical selection forms and cache-key hashing agree
 * everywhere by construction.
 */

#ifndef DMPB_BASE_NAMES_HH
#define DMPB_BASE_NAMES_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace dmpb {

/** Short display name: the last space-separated token of @p name
 *  ("TeraSort" from "Hadoop TeraSort"; unchanged when spaceless). */
std::string shortName(const std::string &name);

/**
 * Case- and punctuation-insensitive selection form: "K-means",
 * "kmeans" and "K_MEANS" all canonicalise to "kmeans", so any of them
 * selects the K-means workload on the command line.
 */
std::string canonName(const std::string &name);

/**
 * Filesystem-safe stem: every non-alphanumeric byte becomes '_'.
 * Lossy ("k-means" and "k_means" collide) -- cache files pair it with
 * fnv1a64() of the raw key to keep distinct keys apart.
 */
std::string sanitizeFileStem(const std::string &name);

/**
 * FNV-1a 64-bit hash.
 *
 * The in-tree standard-library-independent string hash: std::hash's
 * value is implementation-defined (libstdc++ and libc++ disagree), so
 * anything feeding a seed, a checksum or an on-disk cache filename
 * must hash through here to keep the repo's bit-determinism guarantee
 * across toolchains.
 */
/** @{ FNV-1a 64-bit basis/prime, exposed for incremental hashing
 *  (digests that fold in binary words rather than one string). */
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
/** @} */

constexpr std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = kFnvOffset;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return h;
}

/**
 * Deterministic per-name seed derivation: folds @p salt into @p seed
 * (FNV-style) and finalises with splitmix64, so one suite-level seed
 * yields decorrelated per-workload seeds while staying reproducible
 * across platforms. Every subsystem that derives seeds from names
 * (suite runner, pipeline service, co-location orchestration) must go
 * through here so identical (seed, name) pairs agree everywhere.
 */
std::uint64_t mixSeed(std::uint64_t seed, std::string_view salt);

} // namespace dmpb

#endif // DMPB_BASE_NAMES_HH
