/**
 * @file
 * Byte-size and time constants plus human-readable formatting.
 */

#ifndef DMPB_BASE_UNITS_HH
#define DMPB_BASE_UNITS_HH

#include <cstdint>
#include <string>

namespace dmpb {

constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * kKiB;
constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/** "1.50 GiB", "512 B", ... */
std::string formatBytes(double bytes);

/** "1.23 s", "45.6 ms", "1h02m", ... */
std::string formatSeconds(double seconds);

/** "12.3 MB/s" style rate. */
std::string formatRate(double bytes_per_second);

/** Fixed-precision helper: 3 significant-ish digits. */
std::string formatDouble(double v, int precision = 2);

} // namespace dmpb

#endif // DMPB_BASE_UNITS_HH
