#include "base/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace dmpb {

namespace {

void
appendEscaped(std::ostream &os, const std::string &s)
{
    // RFC 8259: every control character below 0x20 MUST be escaped --
    // the named shorthands where they exist, \u00XX for the rest (a
    // workload or parameter name containing one must still yield a
    // parseable document).
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

} // namespace

void
JsonWriter::number(double v)
{
    if (std::isfinite(v))
        os_ << v;
    else
        os_ << "null";  // JSON has no NaN/Inf
}

void
JsonWriter::string(const std::string &s)
{
    os_ << '"';
    appendEscaped(os_, s);
    os_ << '"';
}

std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    appendEscaped(os, s);
    return os.str();
}

// ------------------------------------------------------------ parser

/** Strict recursive-descent parser over one string_view. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    bool
    parseDocument(JsonValue &out, std::string *error)
    {
        bool ok = parseValue(out, 0) &&
                  (skipWs(), pos_ == text_.size() ||
                                 fail("trailing content"));
        if (!ok && error != nullptr) {
            *error = error_ + " at offset " + std::to_string(pos_);
        }
        return ok;
    }

  private:
    bool
    fail(const char *why)
    {
        if (error_.empty())
            error_ = why;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                ++pos_;
                continue;
            }
            if (++pos_ >= text_.size())
                return fail("truncated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp))
                    return false;
                // Surrogate pairs are not needed by the request
                // protocol; reject rather than mis-decode.
                if (cp >= 0xd800 && cp <= 0xdfff)
                    return fail("surrogate escapes unsupported");
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("invalid escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("invalid \\u escape");
            out = out * 16 + digit;
        }
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        // Validate the JSON grammar shape, then hand the span to
        // from_chars (which accepts a superset: leading +, hex, ...).
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        std::size_t digits = pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
            ++pos_;
        }
        if (pos_ == digits)
            return fail("expected number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            std::size_t frac = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
            }
            if (pos_ == frac)
                return fail("expected fraction digits");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            std::size_t exp = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
            }
            if (pos_ == exp)
                return fail("expected exponent digits");
        }
        double v = 0.0;
        auto [ptr, ec] = std::from_chars(text_.data() + start,
                                         text_.data() + pos_, v);
        if (ec != std::errc() || ptr != text_.data() + pos_)
            return fail("unparseable number");
        out.type_ = JsonValue::Type::Number;
        out.number_ = v;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{': {
            ++pos_;
            out.type_ = JsonValue::Type::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.members_.emplace_back(std::move(key),
                                          std::move(member));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                if (text_[pos_] != ',')
                    return fail("expected ',' or '}'");
                ++pos_;
            }
          }
          case '[': {
            ++pos_;
            out.type_ = JsonValue::Type::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue item;
                if (!parseValue(item, depth + 1))
                    return false;
                out.items_.push_back(std::move(item));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                if (text_[pos_] != ',')
                    return fail("expected ',' or ']'");
                ++pos_;
            }
          }
          case '"':
            out.type_ = JsonValue::Type::String;
            return parseString(out.string_);
          case 't':
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = true;
            return literal("true");
          case 'f':
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = false;
            return literal("false");
          case 'n':
            out.type_ = JsonValue::Type::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    static constexpr int kMaxDepth = 32;

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

bool
JsonValue::parse(std::string_view text, JsonValue &out,
                 std::string *error)
{
    out = JsonValue();
    JsonParser parser(text);
    return parser.parseDocument(out, error);
}

bool
JsonValue::asBool(bool fallback) const
{
    return type_ == Type::Bool ? bool_ : fallback;
}

double
JsonValue::asNumber(double fallback) const
{
    return type_ == Type::Number ? number_ : fallback;
}

std::uint64_t
JsonValue::asU64(std::uint64_t fallback) const
{
    if (type_ != Type::Number || number_ < 0.0 ||
        number_ != std::floor(number_) ||
        number_ > 18446744073709549568.0) {  // largest double < 2^64
        return fallback;
    }
    return static_cast<std::uint64_t>(number_);
}

const std::string &
JsonValue::asString() const
{
    static const std::string kEmpty;
    return type_ == Type::String ? string_ : kEmpty;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

} // namespace dmpb
