#include "base/units.hh"

#include <cmath>
#include <cstdio>

namespace dmpb {

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
formatBytes(double bytes)
{
    static const char *suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int idx = 0;
    double v = bytes;
    while (std::fabs(v) >= 1024.0 && idx < 4) {
        v /= 1024.0;
        ++idx;
    }
    char buf[64];
    if (idx == 0)
        std::snprintf(buf, sizeof(buf), "%.0f %s", v, suffix[idx]);
    else
        std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffix[idx]);
    return buf;
}

std::string
formatSeconds(double seconds)
{
    char buf[64];
    double abs = std::fabs(seconds);
    if (abs < 1e-6)
        std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
    else if (abs < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
    else if (abs < 1.0)
        std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
    else if (abs < 3600.0)
        std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
    else
        std::snprintf(buf, sizeof(buf), "%dh%02dm",
                      static_cast<int>(seconds / 3600.0),
                      static_cast<int>(std::fmod(seconds, 3600.0) / 60.0));
    return buf;
}

std::string
formatRate(double bytes_per_second)
{
    static const char *suffix[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
    int idx = 0;
    double v = bytes_per_second;
    while (std::fabs(v) >= 1000.0 && idx < 4) {
        v /= 1000.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffix[idx]);
    return buf;
}

} // namespace dmpb
