/**
 * @file
 * A fixed-size POSIX-threads-style worker pool.
 *
 * The paper implements all data motifs "using the POSIX threads
 * model"; ThreadPool is the repo-wide equivalent. Tasks are arbitrary
 * callables; waitIdle() provides a barrier so callers can fork a batch
 * of chunk-level tasks and join them, mirroring the chunk-per-thread
 * decomposition the motif implementations use.
 */

#ifndef DMPB_BASE_THREAD_POOL_HH
#define DMPB_BASE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dmpb {

/** Fixed-size thread pool with a shared FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (>= 1). */
    explicit ThreadPool(std::size_t num_threads);

    /** Joins all workers; pending tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and every worker is idle. */
    void waitIdle();

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Run @p task(i) for i in [0, n) across the pool and wait.
     * Static block partitioning: worker-count parallel chunks.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &task);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::size_t active_ = 0;
    bool stopping_ = false;
};

} // namespace dmpb

#endif // DMPB_BASE_THREAD_POOL_HH
