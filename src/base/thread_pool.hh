/**
 * @file
 * A fixed-size POSIX-threads-style worker pool.
 *
 * The paper implements all data motifs "using the POSIX threads
 * model"; ThreadPool is the repo-wide equivalent. Tasks are arbitrary
 * callables; waitIdle() provides a barrier so callers can fork a batch
 * of chunk-level tasks and join them, mirroring the chunk-per-thread
 * decomposition the motif implementations use.
 */

#ifndef DMPB_BASE_THREAD_POOL_HH
#define DMPB_BASE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "base/thread_annotations.hh"

namespace dmpb {

/** Fixed-size thread pool with a shared FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (>= 1). */
    explicit ThreadPool(std::size_t num_threads);

    /** Joins all workers; pending tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task for asynchronous execution. Tasks must not
     *  throw: a worker has nowhere to deliver the exception (wrap
     *  throwing bodies, as parallelFor and runShardedJobs do). */
    void submit(std::function<void()> task) DMPB_EXCLUDES(mutex_);

    /** Block until the queue is empty and every worker is idle. */
    void waitIdle() DMPB_EXCLUDES(mutex_);

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Run @p task(i) for i in [0, n) across the pool and wait.
     * Static block partitioning: worker-count parallel chunks.
     * If tasks throw, the exception thrown for the lowest index is
     * rethrown here after every chunk finished (same contract as
     * runShardedJobs, so the outcome is scheduling-independent).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &task)
        DMPB_EXCLUDES(mutex_);

  private:
    void workerLoop() DMPB_EXCLUDES(mutex_);

    std::vector<std::thread> workers_;
    AnnotatedMutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::deque<std::function<void()>> queue_ DMPB_GUARDED_BY(mutex_);
    std::size_t active_ DMPB_GUARDED_BY(mutex_) = 0;
    bool stopping_ DMPB_GUARDED_BY(mutex_) = false;
};

} // namespace dmpb

#endif // DMPB_BASE_THREAD_POOL_HH
