#include "base/stats_util.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace dmpb {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    std::size_t total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta *
           (static_cast<double>(n_) * static_cast<double>(other.n_)) /
           static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.n_) /
             static_cast<double>(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = total;
}

double
RunningStats::variance() const
{
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v) {
        dmpb_assert(x > 0.0, "geomean requires positive values");
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(v.size()));
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    dmpb_assert(x.size() == y.size(), "pearson size mismatch");
    if (x.size() < 2)
        return 0.0;
    double mx = mean(x), my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        double dx = x[i] - mx, dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double
sortedPercentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    dmpb_assert(p >= 0.0 && p <= 100.0, "percentile out of range");
    // A single sample is every percentile of itself -- and must not
    // reach the interpolation below, where rank underflow/overflow
    // quirks live.
    if (sorted.size() == 1)
        return sorted.front();
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    // Clamp the closest ranks into the sample: p=100 lands exactly on
    // the last element, but the truncation must never index past it
    // (nor interpolate toward a phantom neighbour) even when the rank
    // product rounds up.
    std::size_t lo = std::min(static_cast<std::size_t>(rank),
                              sorted.size() - 1);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = std::clamp(rank - static_cast<double>(lo), 0.0, 1.0);
    double v = sorted[lo] + frac * (sorted[hi] - sorted[lo]);
    // Interpolation between in-range ranks cannot legitimately leave
    // [min, max]; clamping makes the min <= p50 <= p95 <= p99 <= max
    // report invariant hold exactly, not just up to rounding.
    return std::clamp(v, sorted.front(), sorted.back());
}

double
percentile(std::vector<double> v, double p)
{
    std::sort(v.begin(), v.end());
    return sortedPercentile(v, p);
}

} // namespace dmpb
