/**
 * @file
 * Clang thread-safety-analysis annotations and an annotated mutex.
 *
 * The repo's concurrency contract ("every mutex-protected member is
 * only touched with its mutex held") used to live in comments and be
 * enforced after the fact by the TSan CI job. These macros turn it
 * into a compile-time property: build with a Clang compiler and
 * `-DDMPB_THREAD_SAFETY=ON` (which adds `-Wthread-safety
 * -Werror=thread-safety`) and an unguarded access to a
 * `DMPB_GUARDED_BY` field, or a call to a `DMPB_REQUIRES` function
 * without the lock, is a build error. Under GCC -- which does not
 * implement the analysis -- every macro expands to nothing, so the
 * annotations cost nothing and change nothing.
 *
 * The analysis only understands types annotated as capabilities, so
 * classes hold an AnnotatedMutex (a zero-overhead std::mutex wrapper)
 * and take scoped MutexLock guards instead of raw
 * std::lock_guard/std::unique_lock. Condition-variable waits go
 * through MutexLock::native(); a wait re-acquires the mutex before
 * returning, so the static "lock held" state stays truthful across
 * it. Wait *predicates* that read guarded state are written as
 * explicit `while (!pred) cv.wait(...)` loops in the holding
 * function rather than as lambdas, because the analysis treats a
 * lambda body as an unannotated function.
 *
 * Macro set (mirroring the Clang documentation's canonical names):
 * DMPB_CAPABILITY, DMPB_SCOPED_CAPABILITY, DMPB_GUARDED_BY,
 * DMPB_PT_GUARDED_BY, DMPB_REQUIRES, DMPB_ACQUIRE, DMPB_RELEASE,
 * DMPB_TRY_ACQUIRE, DMPB_EXCLUDES, DMPB_ASSERT_CAPABILITY,
 * DMPB_RETURN_CAPABILITY, DMPB_NO_THREAD_SAFETY_ANALYSIS.
 */

#ifndef DMPB_BASE_THREAD_ANNOTATIONS_HH
#define DMPB_BASE_THREAD_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__)
#define DMPB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DMPB_THREAD_ANNOTATION(x)
#endif

/** Marks a type whose instances are lockable capabilities. */
#define DMPB_CAPABILITY(x) DMPB_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires a capability for its lifetime. */
#define DMPB_SCOPED_CAPABILITY DMPB_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be read/written while holding @p x. */
#define DMPB_GUARDED_BY(x) DMPB_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be dereferenced while holding @p x. */
#define DMPB_PT_GUARDED_BY(x) DMPB_THREAD_ANNOTATION(pt_guarded_by(x))

/** Callers must already hold the listed capabilities. */
#define DMPB_REQUIRES(...) \
    DMPB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define DMPB_ACQUIRE(...) \
    DMPB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define DMPB_RELEASE(...) \
    DMPB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p ret. */
#define DMPB_TRY_ACQUIRE(...) \
    DMPB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Callers must NOT hold the listed capabilities (deadlock guard). */
#define DMPB_EXCLUDES(...) \
    DMPB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Asserts (at runtime, by contract) that the capability is held. */
#define DMPB_ASSERT_CAPABILITY(x) \
    DMPB_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the capability @p x. */
#define DMPB_RETURN_CAPABILITY(x) \
    DMPB_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: skip analysis for one function. Every use carries a
 *  comment explaining which protocol replaces the mutex. */
#define DMPB_NO_THREAD_SAFETY_ANALYSIS \
    DMPB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dmpb {

class MutexLock;

/**
 * A std::mutex the thread-safety analysis can see. Same size, same
 * cost -- the wrapper only adds the capability annotations that let
 * `DMPB_GUARDED_BY(mutex_)` declarations be checked.
 */
class DMPB_CAPABILITY("mutex") AnnotatedMutex
{
  public:
    AnnotatedMutex() = default;
    AnnotatedMutex(const AnnotatedMutex &) = delete;
    AnnotatedMutex &operator=(const AnnotatedMutex &) = delete;

    void lock() DMPB_ACQUIRE() { mutex_.lock(); }
    void unlock() DMPB_RELEASE() { mutex_.unlock(); }
    bool try_lock() DMPB_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  private:
    friend class MutexLock;
    std::mutex mutex_;
};

/**
 * Scoped guard over an AnnotatedMutex; the annotated replacement for
 * both std::lock_guard and std::unique_lock. Holds from construction
 * to destruction; the relockable unlock()/lock() pair covers the
 * "work outside the lock mid-scope" pattern, and native() exposes the
 * underlying std::unique_lock for std::condition_variable waits.
 */
class DMPB_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(AnnotatedMutex &mutex) DMPB_ACQUIRE(mutex)
        : lock_(mutex.mutex_)
    {}

    ~MutexLock() DMPB_RELEASE()
    {
        // lock_ unlocks on destruction iff currently held.
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Release mid-scope (destruction is then a no-op). */
    void unlock() DMPB_RELEASE() { lock_.unlock(); }

    /** Re-acquire after an unlock(). */
    void lock() DMPB_ACQUIRE() { lock_.lock(); }

    /**
     * The underlying lock, for std::condition_variable::wait. A wait
     * re-acquires before returning, so the capability is held again
     * whenever the caller regains control.
     */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace dmpb

#endif // DMPB_BASE_THREAD_ANNOTATIONS_HH
