/**
 * @file
 * Small numeric helpers: running moments, means, correlation.
 */

#ifndef DMPB_BASE_STATS_UTIL_HH
#define DMPB_BASE_STATS_UTIL_HH

#include <cstddef>
#include <vector>

namespace dmpb {

/** Welford online mean/variance accumulator. */
class RunningStats
{
  public:
    void add(double x);
    void merge(const RunningStats &other);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance. */
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &v);

/** Geometric mean of positive values; 0 for empty input. */
double geomean(const std::vector<double> &v);

/** Pearson correlation; 0 when either side is constant. */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/** Median (copies and sorts); 0 for empty input. */
double median(std::vector<double> v);

/**
 * The @p p-th percentile (p in [0, 100]) by linear interpolation
 * between closest ranks (the same rule numpy's default uses); 0 for
 * empty input. Copies and sorts; for repeated queries over one
 * sample, sort once and call sortedPercentile.
 */
double percentile(std::vector<double> v, double p);

/** percentile() over an already ascending-sorted sample. */
double sortedPercentile(const std::vector<double> &sorted, double p);

} // namespace dmpb

#endif // DMPB_BASE_STATS_UTIL_HH
