#include "base/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "base/logging.hh"

namespace dmpb {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    dmpb_assert(num_threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    cv_task_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        MutexLock lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_task_.notify_one();
}

void
ThreadPool::waitIdle()
{
    MutexLock lock(mutex_);
    while (!(queue_.empty() && active_ == 0))
        cv_idle_.wait(lock.native());
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &task)
{
    if (n == 0)
        return;
    const std::size_t chunks = std::min(n, workers_.size());
    const std::size_t per = (n + chunks - 1) / chunks;
    // One exception slot per chunk: workers must never unwind through
    // the pool (that would std::terminate), and rethrowing the
    // lowest-index failure keeps the observable outcome independent
    // of worker scheduling.
    std::vector<std::exception_ptr> errors(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t lo = c * per;
        const std::size_t hi = std::min(n, lo + per);
        submit([lo, hi, c, &task, &errors] {
            try {
                for (std::size_t i = lo; i < hi; ++i)
                    task(i);
            } catch (...) {
                errors[c] = std::current_exception();
            }
        });
    }
    waitIdle();
    for (std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!(stopping_ || !queue_.empty()))
                cv_task_.wait(lock.native());
            if (queue_.empty()) {
                // stopping_ must be set: drain finished.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            MutexLock lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                cv_idle_.notify_all();
        }
    }
}

} // namespace dmpb
