/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in dmpb flows through Rng so that every data set,
 * workload and experiment is reproducible from a single seed. The core
 * generator is xoshiro256** seeded via splitmix64, which is fast, has a
 * 2^256-1 period, and passes BigCrush; std::mt19937 is deliberately
 * avoided because its state is large and its stream differs across
 * standard-library implementations for the distribution adaptors.
 */

#ifndef DMPB_BASE_RNG_HH
#define DMPB_BASE_RNG_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace dmpb {

/** splitmix64 single step; used for seeding and cheap hashing. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix suitable for hashing identifiers. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    std::uint64_t s = x;
    return splitmix64(s);
}

/**
 * xoshiro256** PRNG with convenience distributions.
 *
 * Cheap to copy; child generators for parallel streams are derived
 * with split() so sibling streams are statistically independent.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x5eedULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound), bound > 0; unbiased via rejection. */
    std::uint64_t nextU64(std::uint64_t bound);

    /** Uniform in [lo, hi] inclusive. */
    std::int64_t nextI64(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard normal via Box-Muller (cached second value). */
    double nextGaussian();

    /** Bernoulli with probability p of returning true. */
    bool nextBool(double p);

    /** Derive an independent child stream, keyed by an index. */
    Rng split(std::uint64_t key) const;

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextU64(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
    double cached_gauss_ = 0.0;
    bool has_cached_gauss_ = false;
};

/**
 * Zipfian sampler over {0, ..., n-1} with exponent theta.
 *
 * Uses the Gray/Jim-Gray style analytic approximation so setup is O(1)
 * and sampling is O(1); used for graph degree distributions and skewed
 * key popularity, matching the BDGS generator the paper uses.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Universe size (> 0).
     * @param theta Skew in [0, 1); 0 is uniform, 0.99 highly skewed.
     */
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw one sample in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t universe() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2_;

    static double zeta(std::uint64_t n, double theta);
};

} // namespace dmpb

#endif // DMPB_BASE_RNG_HH
