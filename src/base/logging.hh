/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * panic()  -- an internal invariant was violated; this is a dmpb bug.
 *             Aborts so a debugger/core dump can capture state.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid argument). Exits with code 1.
 * warn()   -- something is suspicious but execution can continue.
 * inform() -- status messages with no connotation of incorrectness.
 */

#ifndef DMPB_BASE_LOGGING_HH
#define DMPB_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace dmpb {

namespace detail {

/** Build a single string out of a stream of heterogeneous parts. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Whether warn()/inform() output is emitted (tests silence it). */
void setLoggingEnabled(bool enabled);
bool loggingEnabled();

} // namespace dmpb

/** Internal invariant violated: print and abort. */
#define dmpb_panic(...)                                                     \
    ::dmpb::detail::panicImpl(__FILE__, __LINE__,                           \
                              ::dmpb::detail::concat(__VA_ARGS__))

/** Unrecoverable user error: print and exit(1). */
#define dmpb_fatal(...)                                                     \
    ::dmpb::detail::fatalImpl(__FILE__, __LINE__,                           \
                              ::dmpb::detail::concat(__VA_ARGS__))

/** Suspicious condition; execution continues. */
#define dmpb_warn(...)                                                      \
    ::dmpb::detail::warnImpl(__FILE__, __LINE__,                            \
                             ::dmpb::detail::concat(__VA_ARGS__))

/** Status message for the user. */
#define dmpb_inform(...)                                                    \
    ::dmpb::detail::informImpl(::dmpb::detail::concat(__VA_ARGS__))

/** Assert that is kept in release builds; panics on failure. */
#define dmpb_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            dmpb_panic("assertion '", #cond, "' failed. ",                  \
                       ::dmpb::detail::concat(__VA_ARGS__));                \
        }                                                                   \
    } while (0)

#endif // DMPB_BASE_LOGGING_HH
