#include "base/rng.hh"

#include <cmath>

namespace dmpb {

namespace {

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextU64(std::uint64_t bound)
{
    dmpb_assert(bound > 0, "nextU64 bound must be positive");
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextI64(std::int64_t lo, std::int64_t hi)
{
    dmpb_assert(lo <= hi, "nextI64 empty range");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : nextU64(span));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (has_cached_gauss_) {
        has_cached_gauss_ = false;
        return cached_gauss_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-300);
    double u2 = nextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split(std::uint64_t key) const
{
    std::uint64_t sm = s_[0] ^ mix64(key ^ 0xa5a5a5a5a5a5a5a5ULL);
    return Rng(splitmix64(sm));
}

double
ZipfSampler::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    // Exact for small n; integral approximation for large universes so
    // construction stays O(1)-ish for the 2^26-vertex graphs we generate.
    if (n <= 100000) {
        for (std::uint64_t i = 1; i <= n; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        return sum;
    }
    sum = zeta(100000, theta);
    // integral of x^-theta from 1e5 to n
    sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
            std::pow(1e5, 1.0 - theta)) / (1.0 - theta);
    return sum;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    dmpb_assert(n > 0, "Zipf universe must be non-empty");
    dmpb_assert(theta >= 0.0 && theta < 1.0,
                "Zipf theta must be in [0,1), got ", theta);
    zetan_ = zeta(n, theta);
    zeta2_ = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= n_ ? n_ - 1 : idx;
}

} // namespace dmpb
