/**
 * @file
 * Minimal fixed-width text table printer used by the bench harnesses to
 * emit paper-style tables and figure series on stdout.
 */

#ifndef DMPB_BASE_TABLE_HH
#define DMPB_BASE_TABLE_HH

#include <string>
#include <vector>

namespace dmpb {

/** Accumulates rows of strings and renders an aligned ASCII table. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cols);

    /** Append one data row (column count may vary; padded on render). */
    void row(std::vector<std::string> cols);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

    /** Convenience: render straight to stdout. */
    void print() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dmpb

#endif // DMPB_BASE_TABLE_HH
